// Timeline observability tests: recorder mechanics (ring bounds, drop
// accounting, allocation-free record path under NoAllocScope), the
// critical-path analysis on a synthetic grant forest, end-to-end tracing
// through the engines (sim-clock determinism across repeated runs,
// exec-threads threads=1 structural determinism, tracing-off inertness),
// and Chrome-trace export validated by tools/validate_trace_events.py
// when a Python interpreter was found at configure time.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "engine/registry.hpp"
#include "engine/run_report.hpp"
#include "obs/critical_path.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace_export.hpp"
#include "util/invariant.hpp"
#include "workloads/library.hpp"

#ifndef NEXUSPP_TRACE_VALIDATOR
#define NEXUSPP_TRACE_VALIDATOR ""
#endif
#ifndef NEXUSPP_PYTHON
#define NEXUSPP_PYTHON ""
#endif

namespace {

using namespace nexuspp;

constexpr const char* kWorkload = "h264:rows=8,cols=8";

engine::RunReport run_engine(const std::string& name,
                             const engine::EngineParams& params) {
  const auto& registry = engine::EngineRegistry::builtins();
  const auto& library = workloads::WorkloadLibrary::builtins();
  const auto eng = registry.make(name, params);
  return eng->run(library.make_stream(kWorkload));
}

engine::EngineParams traced_params(std::uint32_t workers) {
  engine::EngineParams params;
  params.num_workers = workers;
  params.timeline.enabled = true;
  return params;
}

std::vector<std::uint64_t> run_order(const obs::Timeline& timeline) {
  std::vector<std::uint64_t> serials;
  for (const auto& track : timeline.tracks) {
    for (const auto& event : track.events) {
      if (event.kind == obs::EventKind::kRun) serials.push_back(event.task);
    }
  }
  return serials;
}

// --- Recorder mechanics -------------------------------------------------------

TEST(TimelineRecorder, RingBoundsAndDropAccounting) {
  obs::TimelineRecorder rec("t", "sim", 2);
  const auto track = rec.add_track("a");
  rec.record(track, obs::EventKind::kRun, 5.0, 1.0, 1, 0);
  rec.record(track, obs::EventKind::kRun, 3.0, 1.0, 2, 0);
  rec.record(track, obs::EventKind::kRun, 4.0, 1.0, 3, 0);  // over capacity
  const obs::Timeline timeline = std::move(rec).finish();
  ASSERT_EQ(timeline.tracks.size(), 1u);
  EXPECT_EQ(timeline.tracks[0].events.size(), 2u);
  EXPECT_EQ(timeline.tracks[0].dropped, 1u);
  EXPECT_EQ(timeline.total_events(), 2u);
  EXPECT_EQ(timeline.total_dropped(), 1u);
  // finish() sorts each track by timestamp.
  EXPECT_LE(timeline.tracks[0].events[0].ts_ns,
            timeline.tracks[0].events[1].ts_ns);
}

TEST(TimelineRecorder, RecordPathIsAllocationFree) {
  obs::TimelineRecorder rec("t", "wall", 1024);
  const auto track = rec.add_track("w");
  {
    // Under NEXUSPP_CHECKED any allocation in here aborts the process;
    // in plain builds the scope is a no-op and this documents the claim.
    util::NoAllocScope guard("timeline-record");
    for (int i = 0; i < 600; ++i) {
      rec.record(track, obs::EventKind::kRun, static_cast<double>(i), 1.0,
                 static_cast<std::uint64_t>(i), 0);
    }
    obs::ThreadTrackScope scope(&rec, track);
    ASSERT_TRUE(obs::here_enabled());
    obs::record_here(obs::EventKind::kCombine, obs::here_now_ns(), 0.0, 0, 3);
  }
  EXPECT_FALSE(obs::here_enabled());
  const obs::Timeline timeline = std::move(rec).finish();
  EXPECT_EQ(timeline.total_events(), 601u);
  EXPECT_EQ(timeline.total_dropped(), 0u);
}

TEST(TimelineRecorder, UnboundThreadHelpersAreInert) {
  ASSERT_FALSE(obs::here_enabled());
  EXPECT_EQ(obs::here_now_ns(), 0.0);
  obs::record_here(obs::EventKind::kLockWait, 1.0, 1.0, 1, 1);  // no-op
}

// --- Critical-path analysis ---------------------------------------------------

TEST(CriticalPath, ChainPlusIndependentTask) {
  obs::TimelineRecorder rec("synthetic", "sim", 64);
  const auto track = rec.add_track("w0");
  // Task 1 (100 ns) grants task 2 (50 ns); task 3 (30 ns) is independent.
  rec.record(track, obs::EventKind::kReady, 0.0, 0.0, 1, obs::kNoPred);
  rec.record(track, obs::EventKind::kRun, 0.0, 100.0, 1, 0);
  rec.record(track, obs::EventKind::kReady, 100.0, 0.0, 2, 1);
  rec.record(track, obs::EventKind::kRun, 100.0, 50.0, 2, 0);
  rec.record(track, obs::EventKind::kReady, 0.0, 0.0, 3, obs::kNoPred);
  rec.record(track, obs::EventKind::kRun, 0.0, 30.0, 3, 0);
  // 20 ns of resolution work (submit spans) next to 180 ns of run time.
  rec.record(track, obs::EventKind::kSubmit, 0.0, 20.0, 1, 0);
  const obs::Timeline timeline = std::move(rec).finish();

  const obs::TimelineAnalysis analysis = obs::analyze(timeline);
  EXPECT_EQ(analysis.tasks, 3u);
  EXPECT_DOUBLE_EQ(analysis.critical_path_ns, 150.0);
  EXPECT_EQ(analysis.critical_path_tasks, 2u);
  EXPECT_DOUBLE_EQ(analysis.slack_max_ns, 120.0);  // task 3
  EXPECT_DOUBLE_EQ(analysis.slack_mean_ns, 40.0);
  EXPECT_DOUBLE_EQ(analysis.resolution_overhead_frac, 20.0 / 200.0);
}

TEST(CriticalPath, CorruptGrantCycleDoesNotHang) {
  obs::TimelineRecorder rec("synthetic", "sim", 16);
  const auto track = rec.add_track("w0");
  rec.record(track, obs::EventKind::kReady, 0.0, 0.0, 1, 2);  // 1 <- 2
  rec.record(track, obs::EventKind::kRun, 0.0, 10.0, 1, 0);
  rec.record(track, obs::EventKind::kReady, 0.0, 0.0, 2, 1);  // 2 <- 1
  rec.record(track, obs::EventKind::kRun, 0.0, 10.0, 2, 0);
  const obs::TimelineAnalysis analysis =
      obs::analyze(std::move(rec).finish());
  EXPECT_EQ(analysis.tasks, 2u);
  EXPECT_GT(analysis.critical_path_ns, 0.0);
}

// --- Engine integration -------------------------------------------------------

TEST(EngineTimeline, SimEngineDeterministicAcrossRepeatedRuns) {
  const auto r1 = run_engine("nexus++", traced_params(4));
  const auto r2 = run_engine("nexus++", traced_params(4));
  ASSERT_NE(r1.timeline.data, nullptr);
  ASSERT_NE(r2.timeline.data, nullptr);
  EXPECT_GT(r1.obs_timeline_events, 0u);

  // Same sim clock, same engine, same stream: the recorded timelines and
  // every derived obs_* scalar must be bit-identical.
  EXPECT_EQ(r1.obs_critical_path_ns, r2.obs_critical_path_ns);
  EXPECT_EQ(r1.obs_critical_path_tasks, r2.obs_critical_path_tasks);
  EXPECT_EQ(r1.obs_slack_mean_ns, r2.obs_slack_mean_ns);
  EXPECT_EQ(r1.obs_slack_max_ns, r2.obs_slack_max_ns);
  EXPECT_EQ(r1.obs_resolution_overhead_frac, r2.obs_resolution_overhead_frac);
  EXPECT_EQ(r1.obs_timeline_events, r2.obs_timeline_events);
  EXPECT_EQ(r1.obs_timeline_dropped, r2.obs_timeline_dropped);

  const obs::Timeline& t1 = *r1.timeline.data;
  const obs::Timeline& t2 = *r2.timeline.data;
  ASSERT_EQ(t1.tracks.size(), t2.tracks.size());
  for (std::size_t i = 0; i < t1.tracks.size(); ++i) {
    EXPECT_EQ(t1.tracks[i].name, t2.tracks[i].name);
    EXPECT_EQ(t1.tracks[i].dropped, t2.tracks[i].dropped);
    ASSERT_EQ(t1.tracks[i].events.size(), t2.tracks[i].events.size())
        << t1.tracks[i].name;
    EXPECT_TRUE(t1.tracks[i].events == t2.tracks[i].events)
        << "event mismatch on track " << t1.tracks[i].name;
  }
}

TEST(EngineTimeline, TracingIsBehaviorNeutralOnSimEngines) {
  for (const char* name : {"nexus++", "nexus-banked"}) {
    engine::EngineParams off;
    off.num_workers = 4;
    const auto r_off = run_engine(name, off);
    const auto r_on = run_engine(name, traced_params(4));
    // The hooks never touch simulated state: identical makespan and event
    // count with tracing on or off.
    EXPECT_EQ(r_on.makespan, r_off.makespan) << name;
    EXPECT_EQ(r_on.sim_events, r_off.sim_events) << name;
    EXPECT_EQ(r_on.tasks_completed, r_off.tasks_completed) << name;
  }
}

TEST(EngineTimeline, DisabledTracingLeavesReportInert) {
  engine::EngineParams params;
  params.num_workers = 4;
  const auto report = run_engine("nexus++", params);
  EXPECT_EQ(report.timeline.data, nullptr);
  EXPECT_EQ(report.obs_timeline_events, 0u);
  EXPECT_EQ(report.obs_critical_path_ns, 0.0);
  EXPECT_EQ(report.obs_critical_path_tasks, 0u);
}

TEST(EngineTimeline, ExecThreadsSingleThreadStructurallyDeterministic) {
  engine::EngineParams params = traced_params(1);
  params.threads = 1;
  const auto r1 = run_engine("exec-threads", params);
  const auto r2 = run_engine("exec-threads", params);
  ASSERT_NE(r1.timeline.data, nullptr);
  ASSERT_NE(r2.timeline.data, nullptr);
  EXPECT_EQ(r1.timeline.data->clock, "wall");

  // Wall timestamps differ run to run; the *structure* — which tasks ran,
  // in which order — is the threads=1 determinism anchor.
  const auto order1 = run_order(*r1.timeline.data);
  const auto order2 = run_order(*r2.timeline.data);
  EXPECT_EQ(order1, order2);
  EXPECT_EQ(order1.size(), r1.tasks_completed);
  // Critical-path *membership* is wall-clock dependent (durations jitter
  // run to run), so only sanity-check that analysis ran on both.
  EXPECT_GT(r1.obs_critical_path_tasks, 0u);
  EXPECT_GT(r2.obs_critical_path_tasks, 0u);
}

// --- Export -------------------------------------------------------------------

int run_validator(const std::string& path) {
  const std::string python = NEXUSPP_PYTHON;
  const std::string validator = NEXUSPP_TRACE_VALIDATOR;
  if (python.empty() || validator.empty()) return -1;
  const std::string command = "'" + python + "' '" + validator + "' '" +
                              path + "' >/dev/null 2>&1";
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -2;
}

TEST(TraceExport, SimAndExecExportsValidateIdentically) {
  const auto r_sim = run_engine("nexus++", traced_params(2));
  engine::EngineParams exec_params = traced_params(1);
  exec_params.threads = 2;
  const auto r_exec = run_engine("exec-threads", exec_params);
  ASSERT_NE(r_sim.timeline.data, nullptr);
  ASSERT_NE(r_exec.timeline.data, nullptr);

  const std::string dir = ::testing::TempDir();
  const std::string sim_path = dir + "obs_timeline_sim.json";
  const std::string exec_path = dir + "obs_timeline_exec.json";

  obs::MetricsRegistry metrics;
  r_sim.register_metrics(metrics);
  obs::TraceExportOptions options;
  options.metrics = &metrics;
  ASSERT_TRUE(obs::save_chrome_trace(*r_sim.timeline.data, sim_path,
                                     options));
  ASSERT_TRUE(obs::save_chrome_trace(*r_exec.timeline.data, exec_path));

  // Well-formedness floor without Python: both documents open with the
  // same top-level schema markers.
  for (const std::string& path : {sim_path, exec_path}) {
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string doc = ss.str();
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos) << path;
    EXPECT_NE(doc.find("\"process_name\""), std::string::npos) << path;
    EXPECT_NE(doc.find("\"thread_name\""), std::string::npos) << path;
    EXPECT_NE(doc.find("\"displayTimeUnit\""), std::string::npos) << path;
  }

  const int sim_ok = run_validator(sim_path);
  const int exec_ok = run_validator(exec_path);
  if (sim_ok == -1) {
    GTEST_SKIP() << "no python3 found at configure time";
  }
  EXPECT_EQ(sim_ok, 0) << "sim export failed schema validation";
  EXPECT_EQ(exec_ok, 0) << "exec export failed schema validation";
}

TEST(TraceExport, SaveFailsCleanlyOnBadPath) {
  const auto report = run_engine("nexus++", traced_params(1));
  ASSERT_NE(report.timeline.data, nullptr);
  EXPECT_FALSE(obs::save_chrome_trace(*report.timeline.data,
                                      "/nonexistent-dir/out.json"));
}

// --- Metrics registry ---------------------------------------------------------

TEST(MetricsRegistry, ReportRegistersStableNames) {
  const auto report = run_engine("nexus++", traced_params(2));
  obs::MetricsRegistry metrics;
  report.register_metrics(metrics);
  EXPECT_TRUE(metrics.has("run.makespan_ns"));
  EXPECT_TRUE(metrics.has("run.tasks_completed"));
  EXPECT_TRUE(metrics.has("obs.critical_path_ns"));
  EXPECT_GT(metrics.value_or("run.tasks_completed", 0.0), 0.0);
  // Snapshot is name-sorted for deterministic emission.
  const auto snapshot = metrics.snapshot();
  for (std::size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LT(snapshot[i - 1].name, snapshot[i].name);
  }
}

}  // namespace
