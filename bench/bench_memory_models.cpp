// Ablation: memory contention models.
//
// The paper models contention coarsely ("no more than 32 tasks can access
// the memory at a given time"); this bench compares that rule against the
// contention-free bound and against the finer-grained banked extension
// (chunks striped over per-bank serial queues) on the memory-heavy
// Gaussian and H.264 workloads — quantifying how much the conclusion
// depends on the fidelity of the memory model.

#include <iostream>

#include "bench_common.hpp"
#include "workloads/gaussian.hpp"
#include "workloads/grid.hpp"

namespace nexuspp {
namespace {

const char* model_name(hw::ContentionModel m) {
  switch (m) {
    case hw::ContentionModel::kNone: return "contention-free";
    case hw::ContentionModel::kPorts: return "32-port rule (paper)";
    case hw::ContentionModel::kBanked: return "banked (extension)";
  }
  return "?";
}

int run() {
  struct Workload {
    std::string name;
    bench::StreamFactory factory;
  };
  std::vector<Workload> workloads;

  workloads::GridConfig grid;
  grid.pattern = workloads::GridPattern::kIndependent;
  const auto grid_tasks = make_grid_trace(grid);
  workloads.push_back({"independent (H.264 volumes)", [&grid_tasks] {
                         return workloads::make_grid_stream(grid_tasks);
                       }});

  workloads::GaussianConfig g;
  g.n = 500;
  workloads.push_back(
      {"gaussian 500^2", [g] { return workloads::make_gaussian_stream(g); }});

  util::Table table(
      "Memory contention model ablation (64 workers, double buffering)");
  table.header({"workload", "model", "makespan", "memory wait",
                "max concurrency"});
  for (const auto& w : workloads) {
    for (const auto model :
         {hw::ContentionModel::kNone, hw::ContentionModel::kPorts,
          hw::ContentionModel::kBanked}) {
      nexus::NexusConfig cfg;
      cfg.num_workers = 64;
      cfg.memory.contention = model;
      const auto r = nexus::run_system(cfg, w.factory());
      table.row({w.name, model_name(model),
                 util::fmt_ns(sim::to_ns(r.makespan)),
                 util::fmt_ns(sim::to_ns(r.mem_stats.contention_wait)),
                 std::to_string(r.mem_stats.max_concurrency)});
    }
  }
  std::cout << table.to_string() << "\n";
  std::cout << "Expected: the 32-port rule and the banked model agree "
               "closely (both above the contention-free bound when memory "
               "is oversubscribed); the conclusion does not hinge on the "
               "coarse model. Workloads that fit inside 32 concurrent "
               "transfers (gaussian 500^2 at this scale) see no port "
               "contention at all, only small bank-conflict waits in the "
               "fine-grained model.\n";
  return 0;
}

}  // namespace
}  // namespace nexuspp

int main() { return nexuspp::run(); }
