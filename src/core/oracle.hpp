#pragma once
// GraphOracle: an unbounded, dynamically-allocated reference implementation
// of the StarSs dependency semantics (what a software RTS with no capacity
// limits computes). Property tests submit identical task streams to the
// oracle and to the hardware structures (TaskPool + DependenceTable +
// Resolver, with their dummy tasks, bounded kick-off lists and hash
// collisions) and require identical ready-task behaviour — that is the
// paper's correctness claim for the dummy-task/dummy-entry mechanisms.
//
// The oracle implements both address-matching semantics (core::MatchMode):
// base-address matching (one AddrState per base address, the paper's
// scheme) and range matching (one access record per in-flight parameter;
// two accesses conflict iff their byte ranges overlap and either writes).
// The range implementation deliberately mirrors the range-mode Resolver's
// observable behaviour — per-access FIFO waiter lists, params processed in
// order — so differential tests can require identical grant order, while
// sharing no code or data structures with it.
//
// Tasks are identified by caller-chosen 64-bit keys, deliberately distinct
// from Task Pool indices so tests can correlate the two systems.

#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"

namespace nexuspp::core {

class GraphOracle {
 public:
  using Key = std::uint64_t;

  explicit GraphOracle(MatchMode mode = MatchMode::kBaseAddr)
      : mode_(mode) {}

  /// Registers a task and resolves its parameters. Returns true if the
  /// task has no unresolved dependencies (ready to run).
  bool submit(Key key, const std::vector<Param>& params);

  /// Completes a task; returns the tasks that became ready, in grant order.
  std::vector<Key> finish(Key key);

  [[nodiscard]] MatchMode mode() const noexcept { return mode_; }
  [[nodiscard]] std::size_t pending_count() const noexcept {
    return tasks_.size();
  }
  /// Base-address mode: distinct tracked addresses. Range mode: in-flight
  /// access records.
  [[nodiscard]] std::size_t tracked_addr_count() const noexcept {
    return mode_ == MatchMode::kRange ? accesses_.size() : addrs_.size();
  }

  /// Validates a recorded completion order (e.g. from a
  /// core::CompletionRecorder watching the threaded executor) against the
  /// dependency graph the oracle derives for `tasks`, where task key k has
  /// parameter list tasks[k] and tasks are submitted in key order.
  ///
  /// Soundness: when the real runtime also admits tasks in key order, any
  /// dependency edge a -> b it ever enforced (or legitimately skipped
  /// because a finished before b arrived) still has completed(a) <
  /// completed(b), so checking the recorded order against the
  /// submit-everything-first oracle graph is exact, not conservative.
  ///
  /// Returns an empty string when the order is a legal execution
  /// (every task completes exactly once, only ever after all of its
  /// predecessors), else a description of the first violation.
  [[nodiscard]] static std::string validate_completion_order(
      MatchMode mode, const std::vector<std::vector<Param>>& tasks,
      const std::vector<std::uint64_t>& completion_order);

  /// Hazard census, counted exactly like Resolver::Stats so differential
  /// tests can compare the two and benches can report oracle-confirmed
  /// hazard counts per match mode.
  struct Stats {
    std::uint64_t raw_hazards = 0;
    std::uint64_t war_hazards = 0;
    std::uint64_t waw_hazards = 0;

    [[nodiscard]] std::uint64_t total() const noexcept {
      return raw_hazards + war_hazards + waw_hazards;
    }
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  // --- Base-address mode ------------------------------------------------------
  struct AddrState {
    bool writer_active = false;
    std::uint32_t readers = 0;
    bool writer_waits = false;
    std::deque<Key> waiting;
  };
  void submit_param_base(Key key, const Param& param);
  void release_reader(Addr addr, std::vector<Key>& ready);
  void release_writer(Addr addr, std::vector<Key>& ready);

  // --- Range mode -------------------------------------------------------------
  /// One in-flight parameter access (of a running *or* waiting task).
  struct Access {
    Key owner = 0;
    Addr addr = 0;
    std::uint32_t size = 0;
    bool writes = false;
    std::deque<Key> waiting;  ///< tasks queued behind this access
  };
  using AccessList = std::list<Access>;
  void submit_param_range(Key key, const Param& param);
  void release_access(Key key, const Param& param, std::vector<Key>& ready);

  struct TaskState {
    std::vector<Param> params;
    std::uint32_t dep_count = 0;
  };

  [[nodiscard]] AccessMode mode_for(const TaskState& task, Addr addr) const;
  void grant(Key key, std::vector<Key>& ready);

  MatchMode mode_;
  std::unordered_map<Addr, AddrState> addrs_;  ///< base-address mode
  AccessList accesses_;                        ///< range mode, submit order
  /// Range-mode query indexes, mirroring the DependenceTable's interval
  /// index: the oracle doubles as the software RTS's production resolver,
  /// so overlap scans must not be linear in the in-flight window.
  std::multimap<Addr, AccessList::iterator> access_by_base_;
  std::unordered_multimap<Key, AccessList::iterator> access_by_owner_;
  std::uint32_t max_access_size_ = 0;
  std::unordered_map<Key, TaskState> tasks_;
  Stats stats_;
};

}  // namespace nexuspp::core
