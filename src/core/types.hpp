#pragma once
// Fundamental types shared by the dependency-resolution structures.
//
// Terminology follows the paper: a *task* is identified inside Nexus++ by
// the Task Pool index its descriptor is stored at; a *parameter* is one
// input/output of a task given as (base address, size, access mode), and
// dependencies are decided by comparing base addresses.

#include <cstdint>
#include <string>
#include <vector>

namespace nexuspp::core {

/// Task identifier = Task Pool index ("inside Nexus++, a task is identified
/// by its Task Pool index").
using TaskId = std::uint32_t;
inline constexpr TaskId kInvalidTask = 0xFFFF'FFFFu;

/// Byte address of a parameter's base (dependencies compare base addresses).
using Addr = std::uint64_t;

/// How parameter accesses are matched when resolving dependencies.
///   kBaseAddr — the paper's scheme: two accesses conflict iff their base
///               addresses are equal. Cheap (one hash lookup) but blind to
///               partially overlapping regions of different granularity.
///   kRange    — interval semantics: two accesses conflict iff their byte
///               ranges [addr, addr+size) intersect. Catches halo reads and
///               mixed-granularity tiles that base matching silently treats
///               as independent.
enum class MatchMode : std::uint8_t {
  kBaseAddr,
  kRange,
};

[[nodiscard]] constexpr const char* to_string(MatchMode m) noexcept {
  switch (m) {
    case MatchMode::kBaseAddr: return "base-addr";
    case MatchMode::kRange: return "range";
  }
  return "?";
}

/// Parses the names produced by to_string(MatchMode) (plus the "base"
/// shorthand). Throws std::invalid_argument on anything else — the CLI
/// tools surface the message verbatim.
[[nodiscard]] MatchMode match_mode_from_string(const std::string& name);

/// True when byte ranges [a, a+a_size) and [b, b+b_size) intersect.
[[nodiscard]] constexpr bool ranges_overlap(Addr a, std::uint32_t a_size,
                                            Addr b,
                                            std::uint32_t b_size) noexcept {
  return a < b + b_size && b < a + a_size;
}

/// Access mode of a task parameter.
enum class AccessMode : std::uint8_t {
  kIn,     ///< read-only input
  kOut,    ///< write-only output
  kInOut,  ///< read-modify-write
};

[[nodiscard]] constexpr bool reads(AccessMode m) noexcept {
  return m == AccessMode::kIn || m == AccessMode::kInOut;
}
[[nodiscard]] constexpr bool writes(AccessMode m) noexcept {
  return m == AccessMode::kOut || m == AccessMode::kInOut;
}
[[nodiscard]] constexpr const char* to_string(AccessMode m) noexcept {
  switch (m) {
    case AccessMode::kIn: return "in";
    case AccessMode::kOut: return "out";
    case AccessMode::kInOut: return "inout";
  }
  return "?";
}

/// One input/output of a task: (base address, size, access mode).
struct Param {
  Addr addr = 0;
  std::uint32_t size = 0;
  AccessMode mode = AccessMode::kIn;

  [[nodiscard]] friend bool operator==(const Param&, const Param&) = default;
};

[[nodiscard]] constexpr Param in(Addr a, std::uint32_t size = 4) noexcept {
  return Param{a, size, AccessMode::kIn};
}
[[nodiscard]] constexpr Param out(Addr a, std::uint32_t size = 4) noexcept {
  return Param{a, size, AccessMode::kOut};
}
[[nodiscard]] constexpr Param inout(Addr a, std::uint32_t size = 4) noexcept {
  return Param{a, size, AccessMode::kInOut};
}

/// Cost receipt: how many on-chip table accesses an operation performed.
/// The timed layer (nexus::Maestro) converts these into simulated cycles;
/// the untimed structures only count them.
struct Cost {
  std::uint32_t reads = 0;
  std::uint32_t writes = 0;

  [[nodiscard]] std::uint32_t total() const noexcept {
    return reads + writes;
  }
  Cost& operator+=(const Cost& other) noexcept {
    reads += other.reads;
    writes += other.writes;
    return *this;
  }
  [[nodiscard]] friend Cost operator+(Cost a, const Cost& b) noexcept {
    a += b;
    return a;
  }
  [[nodiscard]] friend bool operator==(const Cost&, const Cost&) = default;
};

/// A task descriptor as submitted by the master core: function pointer plus
/// the parameter list. `serial` is simulation bookkeeping (the submission
/// index used to join trace metadata back on); it costs no hardware bits.
struct TaskDescriptor {
  std::uint64_t fn = 0;        ///< function pointer surrogate
  std::uint64_t serial = 0;    ///< submission order / trace join key
  std::vector<Param> params;

  /// Bus words needed to submit this descriptor: one word carries the
  /// task ID + function pointer, then one word per parameter.
  [[nodiscard]] std::size_t submit_words() const noexcept {
    return 1 + params.size();
  }

  /// Returns a human-readable problem description if the descriptor is
  /// malformed (duplicate base addresses — the programmer should have used
  /// a single inout parameter — or zero-size parameters), empty otherwise.
  [[nodiscard]] std::string validate() const;
};

}  // namespace nexuspp::core
