// Violation fixture for obs-hot-path: a record-path function *defined* in
// an obs/ directory without the annotation the rule demands. The linter
// must flag the definition (declarations and call sites stay exempt).
#include <cstdint>

namespace fixture {

struct Ring {
  std::uint64_t last = 0;
  std::uint64_t count = 0;
};

// A declaration is not a definition — must not be flagged.
void record_sample(Ring& ring, std::uint64_t value) noexcept;

// Definition missing the annotation — must be flagged.
void record_sample(Ring& ring, std::uint64_t value) noexcept {
  ring.last = value;
  ++ring.count;
}

void caller(Ring& ring) {
  // A call site is not a definition — must not be flagged.
  record_sample(ring, 7);
}

}  // namespace fixture
