// Fixture: allocations inside a NEXUS_HOT_PATH function trip the
// hot-path-alloc rule; the same calls outside any annotated function, or
// under an allow(), stay silent.
#include <cstdint>
#include <memory>
#include <vector>

namespace fixture {

// NEXUS_HOT_PATH
void hot(std::vector<std::uint64_t>& out) {
  out.push_back(1);                     // violation: push_back on hot path
  out.resize(8);                        // violation: resize on hot path
  auto* raw = new std::uint64_t(0);     // violation: operator new
  delete raw;
  auto owned = std::make_unique<int>(3);  // violation: make_unique
  (void)owned;
  // nexus-lint: allow(hot-path-alloc)
  out.reserve(64);  // escape hatch: stays silent
}

void cold(std::vector<std::uint64_t>& out) {
  out.push_back(1);  // not annotated: no violation
  out.resize(8);
}

}  // namespace fixture
