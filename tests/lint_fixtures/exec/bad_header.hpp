// Fixture: no #pragma once / include guard before the first code line,
// plus a using-namespace at namespace scope — both header-hygiene
// violations.
#include <cstdint>

using namespace std;

namespace fixture {

inline uint64_t twice(uint64_t x) { return 2 * x; }

}  // namespace fixture
