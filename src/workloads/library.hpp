#pragma once
// Named workload catalog: every generator in this directory registered
// under a stable name with typed, spec-string-configurable options, so the
// CLI tools (`trace_tool generate/capture`, `design_space --workload=`)
// and the benches all resolve workloads through one lookup — adding a
// generator here makes it reachable everywhere by name, exactly like
// EngineRegistry does for runtime models.
//
// A workload spec is `name[:key=value[,key=value...]]`, e.g.
//   "tiled-cholesky:tiles=12,tile-elems=96"
//   "spatial:cells-x=24,fill=0.4,halo-bytes=64"
// Unknown names and unknown/ill-typed options throw std::invalid_argument
// whose message lists what is accepted (CLI tools print it verbatim).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "trace/trace.hpp"

namespace nexuspp::workloads {

/// Parsed option list of one spec. Duplicate keys are rejected on
/// construction; typed getters record which keys were consumed and
/// finish() rejects leftovers, so typos fail loudly instead of silently
/// running the default workload.
class OptionMap {
 public:
  /// Throws std::invalid_argument on duplicate keys.
  explicit OptionMap(std::vector<std::pair<std::string, std::string>> entries);

  [[nodiscard]] std::uint32_t u32(const std::string& key,
                                  std::uint32_t fallback);
  [[nodiscard]] std::uint64_t u64(const std::string& key,
                                  std::uint64_t fallback);
  [[nodiscard]] double real(const std::string& key, double fallback);
  /// Raw string value (enum-like options parse it themselves).
  [[nodiscard]] std::string str(const std::string& key,
                                std::string fallback);

  /// Throws std::invalid_argument naming any key no getter consumed.
  void finish() const;

 private:
  [[nodiscard]] const std::string* find(const std::string& key);

  std::vector<std::pair<std::string, std::string>> entries_;
  std::vector<bool> used_;
};

/// One catalog entry. `build_trace` materializes the full record vector;
/// `build_stream` defaults to wrapping it, but lazy generators (gaussian)
/// override it so multi-million-task workloads never materialize in
/// sweeps.
struct WorkloadEntry {
  std::string name;
  std::string summary;  ///< one line for --list-workloads
  std::string options;  ///< "key=default,..." help string
  std::function<std::shared_ptr<const std::vector<trace::TaskRecord>>(
      OptionMap&)>
      build_trace;
  std::function<std::unique_ptr<trace::TaskStream>(OptionMap&)> build_stream;
};

class WorkloadLibrary {
 public:
  /// The catalog with every src/workloads generator registered.
  [[nodiscard]] static const WorkloadLibrary& builtins();

  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] const WorkloadEntry& info(const std::string& name) const;

  /// Materializes the workload described by `spec` ("name[:k=v,...]").
  [[nodiscard]] std::shared_ptr<const std::vector<trace::TaskRecord>>
  make_trace(const std::string& spec) const;

  /// One fresh stream for `spec` (lazy where the generator supports it).
  [[nodiscard]] std::unique_ptr<trace::TaskStream> make_stream(
      const std::string& spec) const;

  /// A factory safe to call concurrently from sweep threads: eager
  /// workloads share one materialized trace across calls; lazy ones build
  /// an independent stream per call.
  [[nodiscard]] std::function<std::unique_ptr<trace::TaskStream>()>
  make_stream_factory(const std::string& spec) const;

  void add(WorkloadEntry entry);

 private:
  [[nodiscard]] const WorkloadEntry& resolve(const std::string& name) const;

  std::vector<WorkloadEntry> entries_;
};

/// Splits "name[:k=v,...]" into the name and its option list. Throws
/// std::invalid_argument on syntax errors (empty key, missing '=').
[[nodiscard]] std::pair<std::string,
                        std::vector<std::pair<std::string, std::string>>>
parse_workload_spec(const std::string& spec);

}  // namespace nexuspp::workloads
