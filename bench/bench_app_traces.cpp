// Application-shaped workloads, evaluated trace-driven: generate the four
// application task streams (H.264 wavefront decode, tiled Cholesky, tiled
// LU, sparse spatial decomposition), save each as a standard trace *file*,
// and sweep the engines over the files — the full capture/replay pipeline
// (trace_tool capture -> design_space --trace) as a bench, and the
// scenario-diversity axis the trace-driven StarSs literature (CppSs,
// Niethammer et al.) evaluates on instead of micro-patterns.
//
// Grid: {nexus++, nexus-banked, software-rts} x four trace files, 16
// workers, baseline per series = software-rts. Read off the table how the
// hardware task manager's advantage shifts with application shape:
// factorization DAGs have wide trailing-matrix fan-out (plenty of ready
// tasks), the wavefront ramps, the sparse stream serializes along dense
// clusters.

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "trace/io.hpp"
#include "workloads/library.hpp"

namespace nexuspp {
namespace {

int run() {
  const auto& library = workloads::WorkloadLibrary::builtins();

  // (name, library spec) — sized to seconds in default mode. Factorization
  // tiles are small (16x16 elements, ~4 us GEMMs) so dependency-resolution
  // throughput, not kernel time, shapes the comparison.
  const std::vector<std::pair<std::string, std::string>> apps = {
      {"wavefront-decode",
       bench::full_mode() ? "h264" : "h264:rows=60,cols=34"},
      {"tiled-cholesky", bench::full_mode()
                             ? "tiled-cholesky:tiles=24,tile-elems=16"
                             : "tiled-cholesky:tiles=12,tile-elems=16"},
      {"tiled-lu", bench::full_mode() ? "tiled-lu:tiles=20,tile-elems=16"
                                      : "tiled-lu:tiles=10,tile-elems=16"},
      {"spatial", bench::full_mode() ? "spatial:cells-x=32,cells-y=32"
                                     : "spatial"},
  };

  // Emit each workload as a binary trace file, then sweep over the files:
  // from here on the engines only ever see what was (re)loaded from disk.
  // The directory is per-process so concurrent invocations (dev run vs
  // CI on a shared machine) never clobber each other's files.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("nexuspp_bench_app_traces." +
                    std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  engine::SweepSpec spec;
  std::vector<std::string> names;
  for (const auto& [name, wl_spec] : apps) {
    const auto path = (dir / (name + ".nxb")).string();
    trace::Trace trace;
    trace.tasks = *library.make_trace(wl_spec);
    trace.meta.set(trace::TraceMeta::kWorkload, wl_spec);
    trace.meta.set(trace::TraceMeta::kCapturedBy, "bench_app_traces");
    trace::save(path, trace);
    spec.workload_from_trace(name, path);
    names.push_back(name);
    bench::note("trace " + name + ": " +
                std::to_string(trace.tasks.size()) + " tasks -> " + path +
                "\n");
  }

  // One speedup series per workload, software-rts as the reference.
  engine::EngineParams params;
  params.num_workers = 16;
  for (const auto& name : names) {
    for (const std::string engine :
         {"software-rts", "nexus++", "nexus-banked"}) {
      engine::PointSpec p;
      p.engine = engine;
      p.workload = name;
      p.params = params;
      p.series = name;
      p.baseline = engine == "software-rts";
      p.label = engine;
      spec.point(std::move(p));
    }
  }

  const auto results = bench::run_sweep(spec);

  bench::emit("Application-shaped workloads from trace files "
              "(speedup vs software-rts, 16 workers)",
              results,
              {{"workload",
                [](const engine::SweepResult& r) { return r.spec.workload; }},
               {"tasks",
                [](const engine::SweepResult& r) {
                  return util::fmt_count(r.report.tasks_completed);
                }}});

  bench::note(
      "Expected shape: the hardware engines beat software-rts most where "
      "ready tasks are plentiful (factorization trailing-matrix updates, "
      "post-ramp wavefront) and least where the graph itself serializes "
      "(sparse clusters). All rows must complete their full task count — "
      "these streams came off trace files, so any loss would be a "
      "capture/replay defect, not a generator artifact.\n");

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);  // best-effort cleanup
  return 0;
}

}  // namespace
}  // namespace nexuspp

int main() { return nexuspp::run(); }
