#pragma once
// Sparse/irregular spatial-decomposition stream, after the data-dependency
// aware spatial-decomposition codes of Niethammer et al. (SPH / short-
// range MD): space is cut into a 2D grid of cells, only a seeded-random
// subset is occupied, and each time step runs one task per occupied cell
// that updates the cell (inout) and reads every occupied neighbour within
// the 8-cell Moore neighbourhood. The result is exactly the task-graph
// shape those runtimes struggle with — irregular degree (0..8 inputs),
// serialization chains along dense clusters, and a parallelism profile set
// by the occupancy pattern instead of a closed formula.
//
// With halo_bytes > 0 the neighbour reads shrink to a halo that reaches
// *into the tail* of the neighbour cell (base + cell_bytes - halo_bytes):
// a base address no writer ever uses, so base-address matching misses
// those hazards while range matching catches them — the same knob the
// overlap workloads probe, here on an irregular graph.

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/synth.hpp"
#include "trace/trace.hpp"

namespace nexuspp::workloads {

struct SpatialConfig {
  std::uint32_t cells_x = 16;
  std::uint32_t cells_y = 16;
  std::uint32_t steps = 4;
  double fill = 0.6;               ///< occupancy probability per cell
  std::uint32_t cell_bytes = 512;  ///< owned region per cell
  /// 0 = read whole neighbour cells (base-aligned); > 0 = read only a
  /// halo_bytes tail slice of each neighbour (partial overlap, range-mode
  /// territory). Must be < cell_bytes.
  std::uint32_t halo_bytes = 0;
  trace::TimingModel timing;
  std::uint64_t seed = 42;
  core::Addr base = 0xB000'0000;

  void validate() const;
};

/// Number of occupied cells for this config (deterministic in seed).
[[nodiscard]] std::uint64_t spatial_occupied_cells(const SpatialConfig& cfg);

/// Total tasks = steps * occupied cells.
[[nodiscard]] std::uint64_t spatial_task_count(const SpatialConfig& cfg);

/// Materializes the trace in step-major, row-major-cell order.
[[nodiscard]] std::shared_ptr<const std::vector<trace::TaskRecord>>
make_spatial_trace(const SpatialConfig& cfg);

[[nodiscard]] std::unique_ptr<trace::TaskStream> make_spatial_stream(
    const SpatialConfig& cfg);

}  // namespace nexuspp::workloads
