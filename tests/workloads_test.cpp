// Tests for the workload generators: exact task counts and weights
// (Table II), dependency structure of the grid patterns (Fig. 4), the
// Gaussian graph (Fig. 5), and the wide-task stress generator.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/oracle.hpp"
#include "workloads/gaussian.hpp"
#include "workloads/grid.hpp"
#include "workloads/overlap.hpp"
#include "workloads/wide.hpp"

namespace nexuspp {
namespace {

using workloads::GaussianConfig;
using workloads::GaussianStream;
using workloads::GridConfig;
using workloads::GridPattern;
using workloads::WideConfig;

TEST(GaussianWorkload, TaskCountsMatchTableII) {
  // Table II, left column.
  EXPECT_EQ(workloads::gaussian_task_count(250), 31374u);
  EXPECT_EQ(workloads::gaussian_task_count(500), 125249u);
  EXPECT_EQ(workloads::gaussian_task_count(1000), 500499u);
  EXPECT_EQ(workloads::gaussian_task_count(3000), 4501499u);
  EXPECT_EQ(workloads::gaussian_task_count(5000), 12502499u);
}

TEST(GaussianWorkload, AverageWeightsNearTableII) {
  // Table II's right column. Formula (1) gives exactly these means
  // (~2n/3); the paper's table rounds the small sizes to 167/334/667 and
  // quotes 2012/3523 for 3000/5000, which its own formula cannot produce —
  // see EXPERIMENTS.md. We assert the formula-(1) values.
  EXPECT_NEAR(workloads::gaussian_avg_weight(250), 166.01, 0.01);
  EXPECT_NEAR(workloads::gaussian_avg_weight(500), 332.67, 0.01);
  EXPECT_NEAR(workloads::gaussian_avg_weight(1000), 666.00, 0.01);
  EXPECT_NEAR(workloads::gaussian_avg_weight(3000), 1999.33, 0.01);
  EXPECT_NEAR(workloads::gaussian_avg_weight(5000), 3332.67, 0.01);
}

TEST(GaussianWorkload, WeightsFollowFormulaOne) {
  // W(T(j,i)) = n+1-i if i==j else n-i.
  EXPECT_EQ(workloads::gaussian_weight(10, 1, 1), 10u);
  EXPECT_EQ(workloads::gaussian_weight(10, 5, 1), 9u);
  EXPECT_EQ(workloads::gaussian_weight(10, 5, 5), 6u);
  EXPECT_EQ(workloads::gaussian_weight(10, 10, 9), 1u);
  EXPECT_THROW((void)workloads::gaussian_weight(10, 1, 2),
               std::invalid_argument);
  EXPECT_THROW((void)workloads::gaussian_weight(10, 11, 1),
               std::invalid_argument);
}

TEST(GaussianWorkload, StreamEmitsExactCountInSerialOrder) {
  GaussianConfig cfg;
  cfg.n = 40;
  GaussianStream stream(cfg);
  std::uint64_t count = 0;
  std::uint64_t expected_serial = 0;
  double flops = 0.0;
  while (auto rec = stream.next()) {
    EXPECT_EQ(rec->serial, expected_serial++);
    flops += sim::to_ns(rec->exec_time) * cfg.gflops_per_core;
    ++count;
  }
  EXPECT_EQ(count, workloads::gaussian_task_count(40));
  EXPECT_NEAR(flops, workloads::gaussian_total_flops(40), 1.0);
}

TEST(GaussianWorkload, TaskDurationsMatchGflops) {
  // Paper: average 3523-FLOP task at 2 GFLOPS = 1.77 us; and the 250 case
  // averages 83.5 ns.
  GaussianConfig cfg;
  cfg.n = 250;
  GaussianStream stream(cfg);
  double total_ns = 0.0;
  std::uint64_t count = 0;
  while (auto rec = stream.next()) {
    total_ns += sim::to_ns(rec->exec_time);
    ++count;
  }
  EXPECT_NEAR(total_ns / static_cast<double>(count), 83.5, 1.0);
}

TEST(GaussianWorkload, GraphStructureMatchesFigure5) {
  // Validate via the oracle: T11 ready first; T(j,1) blocked on it; after
  // T11 completes, exactly the n-1 updates of column 1 become ready; after
  // they complete, T22 becomes ready.
  GaussianConfig cfg;
  cfg.n = 6;
  GaussianStream stream(cfg);
  core::GraphOracle oracle;
  std::map<std::uint64_t, std::vector<core::Param>> params;
  std::vector<std::uint64_t> ready_at_submit;
  while (auto rec = stream.next()) {
    params[rec->serial] = rec->params;
    if (oracle.submit(rec->serial, rec->params)) {
      ready_at_submit.push_back(rec->serial);
    }
  }
  // Only T11 (serial 0) is ready initially.
  ASSERT_EQ(ready_at_submit.size(), 1u);
  EXPECT_EQ(ready_at_submit[0], 0u);

  // Finish T11: the n-1 = 5 column-1 updates are kicked off.
  auto ready = oracle.finish(0);
  EXPECT_EQ(ready.size(), 5u);

  // Finish them: only T22 becomes ready (serials: T21..T61 are 1..5; T22
  // is 6).
  std::set<std::uint64_t> next;
  for (auto k : ready) {
    for (auto r : oracle.finish(k)) next.insert(r);
  }
  EXPECT_EQ(next, (std::set<std::uint64_t>{6}));
}

TEST(GaussianWorkload, PivotHasManyDependants) {
  // The number of tasks depending on T(i,i)'s output is n-i — the property
  // that overflows fixed kick-off lists (paper Section III-C).
  GaussianConfig cfg;
  cfg.n = 30;
  GaussianStream stream(cfg);
  core::GraphOracle oracle;
  std::uint64_t blocked = 0;
  while (auto rec = stream.next()) {
    if (!oracle.submit(rec->serial, rec->params)) ++blocked;
    if (rec->serial >= 29) break;  // column 1 fully submitted
  }
  EXPECT_EQ(blocked, 29u);  // all updates of column 1 wait on T11
}

TEST(GaussianWorkload, ConfigValidation) {
  GaussianConfig cfg;
  cfg.n = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = GaussianConfig{};
  cfg.gflops_per_core = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = GaussianConfig{};
  cfg.row_stride = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

GridConfig small_grid(GridPattern p, std::uint32_t rows = 6,
                      std::uint32_t cols = 5) {
  GridConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.pattern = p;
  return cfg;
}

TEST(GridWorkload, TaskCountAndOrder) {
  const auto tasks = make_grid_trace(small_grid(GridPattern::kWavefront));
  ASSERT_EQ(tasks->size(), 30u);
  for (std::size_t i = 0; i < tasks->size(); ++i) {
    EXPECT_EQ((*tasks)[i].serial, i);
  }
}

TEST(GridWorkload, PaperGridIs8160Tasks) {
  GridConfig cfg;  // defaults: 120 x 68
  const auto tasks = make_grid_trace(cfg);
  EXPECT_EQ(tasks->size(), 8160u);
}

TEST(GridWorkload, WavefrontDependencies) {
  const auto cfg = small_grid(GridPattern::kWavefront);
  const auto tasks = make_grid_trace(cfg);
  // Task (0,0): no deps, one inout param.
  EXPECT_EQ((*tasks)[0].params.size(), 1u);
  // Task (0,j>0): left input + inout.
  EXPECT_EQ((*tasks)[1].params.size(), 2u);
  // Task (i>0, 0): up-right input + inout.
  EXPECT_EQ((*tasks)[cfg.cols].params.size(), 2u);
  // Interior task: left + up-right + inout.
  EXPECT_EQ((*tasks)[cfg.cols + 1].params.size(), 3u);
  // Last column task (i>0, cols-1): only left + inout (no up-right).
  EXPECT_EQ((*tasks)[2 * cfg.cols - 1].params.size(), 2u);

  // Address relationships for the interior task (1,1): reads (1,0) and
  // (0,2), writes (1,1).
  const auto& t = (*tasks)[cfg.cols + 1];
  EXPECT_EQ(t.params[0].addr, grid_block_addr(cfg, 1, 0));
  EXPECT_EQ(t.params[1].addr, grid_block_addr(cfg, 0, 2));
  EXPECT_EQ(t.params[2].addr, grid_block_addr(cfg, 1, 1));
  EXPECT_EQ(t.params[2].mode, core::AccessMode::kInOut);
}

TEST(GridWorkload, HorizontalAndVerticalChains) {
  const auto h = make_grid_trace(small_grid(GridPattern::kHorizontal));
  const auto v = make_grid_trace(small_grid(GridPattern::kVertical));
  const auto cfg = small_grid(GridPattern::kHorizontal);
  // Horizontal: (1,1) reads (1,0).
  EXPECT_EQ((*h)[cfg.cols + 1].params[0].addr, grid_block_addr(cfg, 1, 0));
  // Vertical: (1,1) reads (0,1).
  EXPECT_EQ((*v)[cfg.cols + 1].params[0].addr, grid_block_addr(cfg, 0, 1));
  // Horizontal: first column tasks are chain heads (1 param).
  EXPECT_EQ((*h)[cfg.cols].params.size(), 1u);
  // Vertical: first row tasks are chain heads.
  EXPECT_EQ((*v)[1].params.size(), 1u);
}

TEST(GridWorkload, IndependentTasksShareNothing) {
  const auto tasks = make_grid_trace(small_grid(GridPattern::kIndependent));
  std::set<core::Addr> seen;
  for (const auto& t : *tasks) {
    for (const auto& p : t.params) {
      EXPECT_TRUE(seen.insert(p.addr).second)
          << "address reused across independent tasks";
    }
  }
}

TEST(GridWorkload, SameTimesAcrossPatterns) {
  // The paper reuses H.264 task times for every pattern; our generators key
  // times by (seed, serial) so patterns are directly comparable.
  const auto a = make_grid_trace(small_grid(GridPattern::kWavefront));
  const auto b = make_grid_trace(small_grid(GridPattern::kIndependent));
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].exec_time, (*b)[i].exec_time);
    EXPECT_EQ((*a)[i].read_bytes, (*b)[i].read_bytes);
  }
}

TEST(GridWorkload, TimingMeansMatchPublished) {
  GridConfig cfg;  // full 8160-task grid
  const auto tasks = make_grid_trace(cfg);
  const auto s = trace::summarize(*tasks);
  EXPECT_NEAR(s.mean_exec_ns, 11'800.0, 300.0);
  const double mem_ns =
      (s.mean_read_bytes + s.mean_write_bytes) / 128.0 * 12.0;
  EXPECT_NEAR(mem_ns, 7'500.0, 300.0);
}

TEST(GridWorkload, MaxParallelism) {
  GridConfig cfg;  // 120 x 68
  cfg.pattern = GridPattern::kHorizontal;
  EXPECT_EQ(grid_max_parallelism(cfg), 120u);
  cfg.pattern = GridPattern::kVertical;
  EXPECT_EQ(grid_max_parallelism(cfg), 68u);
  cfg.pattern = GridPattern::kIndependent;
  EXPECT_EQ(grid_max_parallelism(cfg), 8160u);
  cfg.pattern = GridPattern::kWavefront;
  EXPECT_EQ(grid_max_parallelism(cfg), 34u);
}

TEST(GridWorkload, ValidatesEmptyGrid) {
  GridConfig cfg;
  cfg.rows = 0;
  EXPECT_THROW((void)make_grid_trace(cfg), std::invalid_argument);
}

TEST(GridWorkload, DescriptorsAreWellFormed) {
  const auto tasks = make_grid_trace(GridConfig{});
  for (const auto& t : *tasks) {
    core::TaskDescriptor td;
    td.params = t.params;
    EXPECT_EQ(td.validate(), "") << "task " << t.serial;
  }
}

TEST(WideWorkload, ParameterWidths) {
  WideConfig cfg;
  cfg.lanes = 2;
  cfg.chain_length = 3;
  cfg.width = 12;
  const auto tasks = make_wide_trace(cfg);
  ASSERT_EQ(tasks->size(), 6u);
  // Step 0 tasks: width outputs only; later steps: 2*width params.
  EXPECT_EQ((*tasks)[0].params.size(), 12u);
  EXPECT_EQ((*tasks)[2].params.size(), 24u);
  for (const auto& t : *tasks) {
    core::TaskDescriptor td;
    td.params = t.params;
    EXPECT_EQ(td.validate(), "");
  }
}

TEST(WideWorkload, ChainsAreDependentThroughOracle) {
  WideConfig cfg;
  cfg.lanes = 2;
  cfg.chain_length = 4;
  cfg.width = 3;
  const auto tasks = make_wide_trace(cfg);
  core::GraphOracle oracle;
  std::uint64_t ready = 0;
  for (const auto& t : *tasks) {
    if (oracle.submit(t.serial, t.params)) ++ready;
  }
  EXPECT_EQ(ready, 2u);  // only the two chain heads
}

TEST(WideWorkload, Validation) {
  WideConfig cfg;
  cfg.lanes = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = WideConfig{};
  cfg.block_bytes = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// --- Overlap workloads --------------------------------------------------------

TEST(HaloStencilWorkload, CountsShapeAndOverlapStructure) {
  workloads::HaloStencilConfig cfg;
  cfg.blocks = 8;
  cfg.steps = 3;
  const auto tasks = make_halo_stencil_trace(cfg);
  ASSERT_EQ(tasks->size(), workloads::halo_stencil_task_count(cfg));
  // The census agrees this trace has base-addr blind spots (every grid /
  // gaussian / wide trace scores zero here).
  EXPECT_GT(trace::summarize(*tasks).partially_overlapping_bases, 0u);

  const core::Addr b = cfg.block_bytes;
  for (std::uint32_t t = 0; t < cfg.steps; ++t) {
    for (std::uint32_t i = 0; i < cfg.blocks; ++i) {
      const auto& rec = (*tasks)[t * cfg.blocks + i];
      const auto& own = rec.params.back();
      EXPECT_EQ(own.mode, core::AccessMode::kInOut);
      EXPECT_EQ(own.addr, cfg.base + i * b);
      EXPECT_EQ(own.size, cfg.block_bytes);
      // Interior tasks read both halos; edges read one.
      const std::size_t halos = (i > 0 ? 1u : 0u) + (i + 1 < cfg.blocks);
      EXPECT_EQ(rec.params.size(), 1u + halos);
      if (i > 0) {
        // The left halo lies strictly inside the neighbour's block: its
        // base matches no parameter that writes — the base-addr blind spot.
        const auto& left = rec.params.front();
        EXPECT_EQ(left.addr, cfg.base + i * b - cfg.halo_bytes);
        EXPECT_TRUE(core::ranges_overlap(left.addr, left.size,
                                         cfg.base + (i - 1) * b,
                                         cfg.block_bytes));
        for (const auto& other : *tasks) {
          for (const auto& p : other.params) {
            if (core::writes(p.mode)) {
              EXPECT_NE(p.addr, left.addr);
            }
          }
        }
      }
    }
  }
}

TEST(MixedTilesWorkload, CountsAndSubBlockStaggering) {
  workloads::MixedTilesConfig cfg;
  cfg.tiles = 4;
  cfg.rounds = 2;
  cfg.tile_bytes = 256;
  cfg.sub_blocks = 4;
  const auto tasks = make_mixed_tiles_trace(cfg);
  ASSERT_EQ(tasks->size(), workloads::mixed_tiles_task_count(cfg));

  // Per tile: one whole-tile inout, then sub_blocks staggered reads that
  // tile the producer's range exactly.
  const std::uint32_t sub = cfg.tile_bytes / cfg.sub_blocks;
  for (std::size_t g = 0; g < tasks->size(); g += 1 + cfg.sub_blocks) {
    const auto& producer = (*tasks)[g];
    ASSERT_EQ(producer.params.size(), 1u);
    EXPECT_EQ(producer.params[0].mode, core::AccessMode::kInOut);
    EXPECT_EQ(producer.params[0].size, cfg.tile_bytes);
    for (std::uint32_t k = 0; k < cfg.sub_blocks; ++k) {
      const auto& consumer = (*tasks)[g + 1 + k];
      ASSERT_EQ(consumer.params.size(), 1u);
      EXPECT_EQ(consumer.params[0].mode, core::AccessMode::kIn);
      EXPECT_EQ(consumer.params[0].addr,
                producer.params[0].addr + k * sub);
      EXPECT_EQ(consumer.params[0].size, sub);
    }
  }
}

TEST(OverlapWorkloads, RangeOracleSeesHazardsBaseOracleMisses) {
  // The acceptance criterion, at workload level: feed the same stream to
  // both oracles — range matching confirms strictly more hazards.
  workloads::HaloStencilConfig cfg;
  cfg.blocks = 12;
  cfg.steps = 2;
  const auto tasks = make_halo_stencil_trace(cfg);

  core::GraphOracle::Stats census[2];
  for (const core::MatchMode mode :
       {core::MatchMode::kBaseAddr, core::MatchMode::kRange}) {
    core::GraphOracle oracle(mode);
    std::vector<core::GraphOracle::Key> ready;
    for (const auto& rec : *tasks) {
      if (oracle.submit(rec.serial, rec.params)) ready.push_back(rec.serial);
    }
    while (!ready.empty()) {
      const auto key = ready.back();
      ready.pop_back();
      for (const auto k : oracle.finish(key)) ready.push_back(k);
    }
    EXPECT_EQ(oracle.pending_count(), 0u);
    census[mode == core::MatchMode::kRange] = oracle.stats();
  }
  // Right halos share block bases, so base matching sees *some* hazards —
  // but every left-halo overlap is invisible to it.
  EXPECT_GT(census[0].total(), 0u);
  EXPECT_GT(census[1].total(), census[0].total());
  EXPECT_GT(census[1].war_hazards, census[0].war_hazards);
}

TEST(OverlapWorkloads, ConfigValidation) {
  workloads::HaloStencilConfig halo;
  halo.halo_bytes = halo.block_bytes;  // halo must be smaller than a block
  EXPECT_THROW(halo.validate(), std::invalid_argument);
  halo = {};
  halo.blocks = 0;
  EXPECT_THROW(halo.validate(), std::invalid_argument);

  workloads::MixedTilesConfig tiles;
  tiles.sub_blocks = 3;  // must divide tile_bytes (4096)
  EXPECT_THROW(tiles.validate(), std::invalid_argument);
  tiles = {};
  tiles.rounds = 0;
  EXPECT_THROW(tiles.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace nexuspp
