#pragma once
// Deterministic random number generation for reproducible experiments.
//
// All stochastic pieces of this project (synthetic trace times, random DAG
// generators for property tests) draw from SplitMix64/Xoshiro256** seeded
// explicitly, so a (config, seed) pair always reproduces the same run.

#include <array>
#include <cstdint>
#include <limits>

namespace nexuspp::util {

/// SplitMix64: used to expand a single 64-bit seed into a full state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA'14). Passes BigCrush when used as a stream.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the project-wide PRNG. Small, fast, and high quality;
/// satisfies the UniformRandomBitGenerator concept so it can also feed
/// <random> distributions where convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit value via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : state_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) noexcept { return uniform01() < p; }

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Gamma(shape k > 0, scale theta > 0) via Marsaglia & Tsang.
  /// Used for synthetic task execution/memory times: strictly positive,
  /// right-skewed — a good stand-in for measured task-duration samples.
  double gamma(double shape, double scale) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace nexuspp::util
