// Fixture: defaulted-seq_cst atomic operations in an exec/ path — every
// one must trip the atomic-order rule. The allow()ed site must not.
#include <atomic>
#include <cstdint>

namespace fixture {

// Raw std::atomic props for the defaulted-order sites below; the
// chk-instrumented-sync rule has its own fixture (raw_sync.cpp).
// nexus-lint: allow(chk-instrumented-sync)
std::atomic<std::uint64_t> counter{0};
// nexus-lint: allow(chk-instrumented-sync)
std::atomic<bool> flag{false};

std::uint64_t bad_sites() {
  counter.store(1);                       // violation: defaulted store
  counter.fetch_add(2);                   // violation: defaulted RMW
  bool expected = false;
  flag.compare_exchange_strong(expected,  // violation: defaulted CAS
                               true);
  return counter.load();                  // violation: defaulted load
}

std::uint64_t good_sites() {
  counter.store(1, std::memory_order_relaxed);
  counter.fetch_add(2, std::memory_order_acq_rel);
  // nexus-lint: allow(atomic-order)
  counter.fetch_sub(1);  // escape hatch: stays silent
  return counter.load(std::memory_order_acquire);
}

}  // namespace fixture
