// Fixture: a file that exercises every rule's *shape* without violating
// any of them — must produce zero diagnostics. Synchronization types use
// the chk:: spellings required in exec/ paths (the fixture is linted,
// never compiled, so no include of the real header is needed).
#include <cstdint>
#include <mutex>
#include <vector>

namespace fixture {

chk::Atomic<std::uint64_t> counter{0};

struct Shard {
  chk::Mutex mu_;
  std::unique_lock<chk::Mutex> lock_shard() {
    return std::unique_lock<chk::Mutex>(mu_);
  }
};

// NEXUS_HOT_PATH
inline std::uint64_t hot_but_clean(const std::vector<std::uint64_t>& in) {
  std::uint64_t sum = 0;
  for (const auto v : in) sum += v;
  counter.fetch_add(sum, std::memory_order_relaxed);
  return counter.load(std::memory_order_acquire);
}

inline void one_lock_at_a_time(Shard& a, Shard& b) {
  {
    const auto lock = a.lock_shard();
  }
  const auto lock = b.lock_shard();
}

}  // namespace fixture
