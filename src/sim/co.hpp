#pragma once
// Co<T>: the coroutine type used for every simulated process and
// sub-operation.
//
// A Co is lazy (suspends at the start) and resumes its awaiting parent via
// symmetric transfer when it finishes, so arbitrarily deep call chains of
// simulated operations (`co_await memory.transfer(...)` inside
// `co_await tc.fetch(...)`) run without growing the real stack.
//
// Ownership: the Co object owns the coroutine frame. `co_await child`
// keeps the temporary alive for the full expression, so a finished child
// frame is destroyed as soon as its value has been extracted. Top-level
// processes transfer ownership to the Simulator via release().

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace nexuspp::sim {

namespace detail {

/// Final awaiter: transfers control back to whoever co_awaited this
/// coroutine (or parks if it was a detached top-level process).
template <typename Promise>
struct FinalAwaiter {
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) const noexcept {
    if (auto cont = h.promise().continuation; cont) return cont;
    return std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Co {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation{};
    std::exception_ptr exception{};
    std::optional<T> value{};

    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    detail::FinalAwaiter<promise_type> final_suspend() noexcept { return {}; }
    void return_value(T v) { value.emplace(std::move(v)); }
    void unhandled_exception() { exception = std::current_exception(); }
  };

  using handle_type = std::coroutine_handle<promise_type>;

  Co() noexcept = default;
  explicit Co(handle_type h) noexcept : handle_(h) {}
  Co(Co&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Co& operator=(Co&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  ~Co() { destroy(); }

  /// Awaiting a Co starts it and suspends the parent until it finishes.
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;  // symmetric transfer into the child
  }
  T await_resume() {
    if (handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
    return std::move(*handle_.promise().value);
  }

  [[nodiscard]] bool valid() const noexcept {
    return static_cast<bool>(handle_);
  }

  /// Transfers frame ownership to the caller (used by Simulator::spawn).
  [[nodiscard]] handle_type release() noexcept {
    return std::exchange(handle_, {});
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  handle_type handle_{};
};

/// void specialization: identical shape, no stored value.
template <>
class [[nodiscard]] Co<void> {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation{};
    std::exception_ptr exception{};

    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    detail::FinalAwaiter<promise_type> final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  using handle_type = std::coroutine_handle<promise_type>;

  Co() noexcept = default;
  explicit Co(handle_type h) noexcept : handle_(h) {}
  Co(Co&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Co& operator=(Co&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  ~Co() { destroy(); }

  [[nodiscard]] bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;
  }
  void await_resume() {
    if (handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  [[nodiscard]] bool valid() const noexcept {
    return static_cast<bool>(handle_);
  }
  [[nodiscard]] handle_type release() noexcept {
    return std::exchange(handle_, {});
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  handle_type handle_{};
};

}  // namespace nexuspp::sim
