// The lock-free resolver backend (exec/sharded_resolver, sync=lockfree)
// and its building blocks: the flat-combining DelegationQueue (FIFO,
// MPSC exactly-once delivery, full-ring degradation), the EpochDomain
// (guards block reclamation, retired objects are freed after quiescent
// advances, concurrent box-swap canary), backend parity against the
// mutex implementation, oracle-validated stress across sync x threads x
// match modes x seeds, deadlock diagnosis in lockfree mode, and the
// sync-telemetry plumbing through the engine/RunReport CSV schema.
//
// This file runs under the ThreadSanitizer CI job and under the Release
// `--repeat until-fail:10` repeat-runner: every multi-threaded test here
// must be schedule-independent by construction.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/observer.hpp"
#include "core/oracle.hpp"
#include "engine/registry.hpp"
#include "engine/run_report.hpp"
#include "exec/epoch.hpp"
#include "exec/executor.hpp"
#include "exec/sync_queue.hpp"
#include "trace/trace.hpp"
#include "workloads/random_dag.hpp"

namespace nexuspp {
namespace {

using core::GraphOracle;
using core::MatchMode;

// --- SyncMode strings ---------------------------------------------------------

TEST(SyncMode, StringRoundTripAndErrors) {
  EXPECT_STREQ(exec::to_string(exec::SyncMode::kMutex), "mutex");
  EXPECT_STREQ(exec::to_string(exec::SyncMode::kLockFree), "lockfree");
  EXPECT_EQ(exec::sync_mode_from_string("mutex"), exec::SyncMode::kMutex);
  EXPECT_EQ(exec::sync_mode_from_string("lockfree"),
            exec::SyncMode::kLockFree);
  EXPECT_THROW((void)exec::sync_mode_from_string("spinlock"),
               std::invalid_argument);
  EXPECT_THROW((void)exec::sync_mode_from_string(""), std::invalid_argument);
}

// --- DelegationQueue ----------------------------------------------------------

struct CountedRequest : exec::SyncRequest {
  int id = 0;
  std::atomic<int> handled{0};
};

TEST(DelegationQueue, DrainsInFifoOrder) {
  exec::DelegationQueue queue(8);
  std::vector<CountedRequest> requests(5);
  for (int i = 0; i < 5; ++i) {
    requests[i].id = i;
    ASSERT_TRUE(queue.try_publish(&requests[i]));
  }
  ASSERT_TRUE(queue.try_acquire_combiner());
  std::vector<int> order;
  const auto drained = queue.drain([&order](exec::SyncRequest& r) {
    order.push_back(static_cast<CountedRequest&>(r).id);
  });
  queue.release_combiner();
  EXPECT_EQ(drained, 5u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  for (const auto& r : requests) {
    EXPECT_TRUE(r.done.load(std::memory_order_acquire));
  }
  const auto stats = queue.stats();
  EXPECT_EQ(stats.combined_batches, 1u);
  EXPECT_EQ(stats.combined_requests, 5u);
  EXPECT_EQ(stats.max_combined_batch, 5u);
}

TEST(DelegationQueue, FullRingRejectsPublishAndRecoversAfterDrain) {
  exec::DelegationQueue queue(2);
  EXPECT_EQ(queue.capacity(), 2u);
  std::vector<CountedRequest> requests(3);
  ASSERT_TRUE(queue.try_publish(&requests[0]));
  ASSERT_TRUE(queue.try_publish(&requests[1]));
  EXPECT_FALSE(queue.try_publish(&requests[2]));  // full, not lost
  ASSERT_TRUE(queue.try_acquire_combiner());
  EXPECT_EQ(queue.drain([](exec::SyncRequest&) {}), 2u);
  queue.release_combiner();
  EXPECT_TRUE(queue.try_publish(&requests[2]));  // ring slots recycled
}

TEST(DelegationQueue, ExecuteCombinesWhenRingIsFull) {
  // A capacity-2 ring with a single thread pushing through execute():
  // every publish after the second must combine in place rather than
  // deadlock on a full ring (there is no other combiner to help).
  exec::DelegationQueue queue(2);
  int handled = 0;
  for (int i = 0; i < 64; ++i) {
    CountedRequest request;
    request.id = i;
    queue.execute(request, [&handled](exec::SyncRequest&) { ++handled; });
    EXPECT_TRUE(request.done.load(std::memory_order_acquire));
  }
  EXPECT_EQ(handled, 64);
}

TEST(DelegationQueue, MpscDeliversEveryRequestExactlyOnce) {
  // 4 producers x 500 requests through the full execute() protocol on a
  // deliberately tiny ring, so publish-side combining, combiner handoff
  // and done-flag waiting all happen. The handler mutates *plain* state:
  // the combiner flag's release/acquire pair is what makes that safe, and
  // TSan checks exactly that claim.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  exec::DelegationQueue queue(8);
  std::uint64_t plain_sum = 0;  // combiner-serialized, intentionally plain
  std::vector<std::vector<CountedRequest>> requests(kProducers);
  for (auto& lane : requests) {
    lane = std::vector<CountedRequest>(kPerProducer);
  }
  const auto handler = [&plain_sum](exec::SyncRequest& r) {
    auto& counted = static_cast<CountedRequest&>(r);
    counted.handled.fetch_add(1, std::memory_order_relaxed);
    ++plain_sum;
  };
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        requests[p][i].id = p * kPerProducer + i;
        queue.execute(requests[p][i], handler);
      }
    });
  }
  for (auto& t : producers) t.join();

  EXPECT_EQ(plain_sum, static_cast<std::uint64_t>(kProducers) * kPerProducer);
  for (const auto& lane : requests) {
    for (const auto& r : lane) {
      EXPECT_EQ(r.handled.load(), 1) << "request " << r.id;
      EXPECT_TRUE(r.done.load(std::memory_order_acquire));
    }
  }
  const auto stats = queue.stats();
  EXPECT_EQ(stats.combined_requests,
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_GE(stats.combined_batches, 1u);
  EXPECT_GE(stats.max_combined_batch, 1u);
}

// --- EpochDomain --------------------------------------------------------------

struct DeleterFlag {
  static void reset() { freed.store(false); }
  static void mark(void*) { freed.store(true); }
  static std::atomic<bool> freed;
};
std::atomic<bool> DeleterFlag::freed{false};

TEST(EpochDomain, GuardBlocksReclamationUntilUnpinned) {
  DeleterFlag::reset();
  exec::EpochDomain domain;
  int payload = 7;
  {
    exec::EpochDomain::Guard guard(domain);
    domain.retire(&payload, &DeleterFlag::mark);
    EXPECT_TRUE(domain.has_garbage());
    // The pinned guard observed the retirement epoch; at most one advance
    // can pass it, which is one short of the two the scheme requires.
    for (int i = 0; i < 8; ++i) domain.try_advance();
    EXPECT_FALSE(DeleterFlag::freed.load());
  }
  for (int i = 0; i < 8; ++i) domain.try_advance();
  EXPECT_TRUE(DeleterFlag::freed.load());
  EXPECT_FALSE(domain.has_garbage());
  const auto stats = domain.stats();
  EXPECT_GE(stats.advances, 2u);
  EXPECT_EQ(stats.retired, 1u);
  EXPECT_EQ(stats.reclaimed, 1u);
}

TEST(EpochDomain, DestructorReclaimsLeftoverGarbage) {
  DeleterFlag::reset();
  {
    exec::EpochDomain domain;
    static int payload = 0;
    domain.retire(&payload, &DeleterFlag::mark);
  }
  EXPECT_TRUE(DeleterFlag::freed.load());
}

TEST(EpochDomain, ConcurrentBoxSwapNeverYieldsTornReads) {
  // The resolver's actual usage pattern, distilled: writers swap a shared
  // pointer to a two-field box (both fields always equal) and retire the
  // old box; readers dereference under a Guard and assert the invariant.
  // A reclamation bug shows up as a torn read (fields differ after the
  // memory is reused) or as a TSan/ASan report.
  struct Box {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
  };
  exec::EpochDomain domain;
  std::atomic<Box*> current{new Box{1, 1}};
  std::atomic<bool> stop{false};
  constexpr int kSwaps = 400;

  std::thread writer([&] {
    for (std::uint64_t v = 2; v < 2 + kSwaps; ++v) {
      Box* fresh = new Box{v, v};
      Box* old = current.exchange(fresh, std::memory_order_acq_rel);
      domain.retire(old);
      domain.try_advance();
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      std::uint64_t checks = 0;
      while (!stop.load(std::memory_order_acquire) || checks == 0) {
        exec::EpochDomain::Guard guard(domain);
        const Box* box = current.load(std::memory_order_acquire);
        ASSERT_EQ(box->a, box->b);
        ++checks;
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  delete current.load();
  const auto stats = domain.stats();
  EXPECT_EQ(stats.retired, static_cast<std::uint64_t>(kSwaps));
  EXPECT_LE(stats.reclaimed, stats.retired);
}

// --- Oracle-validated executor runs across both backends ----------------------

struct OracleInput {
  std::vector<std::vector<core::Param>> params;
  std::unordered_map<std::uint64_t, std::uint64_t> index_of;
};

OracleInput oracle_input(const std::vector<trace::TaskRecord>& tasks) {
  OracleInput in;
  in.params.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    in.params.push_back(tasks[i].params);
    in.index_of.emplace(tasks[i].serial, i);
  }
  return in;
}

exec::ExecReport run_validated(const std::vector<trace::TaskRecord>& tasks,
                               exec::ExecConfig cfg) {
  core::CompletionRecorder recorder;
  cfg.observer = &recorder;
  exec::ThreadedExecutor executor(cfg);
  const auto report = executor.run(std::make_unique<trace::VectorStream>(
      std::make_shared<const std::vector<trace::TaskRecord>>(tasks)));
  EXPECT_FALSE(report.deadlocked) << report.diagnosis;
  EXPECT_EQ(report.tasks_completed, tasks.size());

  const auto in = oracle_input(tasks);
  std::vector<std::uint64_t> order;
  for (const auto serial : recorder.order()) {
    const auto it = in.index_of.find(serial);
    if (it == in.index_of.end()) {
      ADD_FAILURE() << "recorder saw unknown serial " << serial;
      return report;
    }
    order.push_back(it->second);
  }
  const auto violation = GraphOracle::validate_completion_order(
      cfg.match_mode, in.params, order);
  EXPECT_TRUE(violation.empty()) << violation;
  return report;
}

std::vector<trace::TaskRecord> small_dag(std::uint64_t seed,
                                         std::uint32_t tasks = 300) {
  workloads::RandomDagConfig cfg;
  cfg.seed = seed;
  cfg.num_tasks = tasks;
  cfg.addr_space = 24;  // dense enough for real hazard chains
  return *workloads::make_random_dag_trace(cfg);
}

/// Both backends drive the identical shared registration/release bodies,
/// so at threads=1 (inline, deterministic) their completion orders and
/// resolver decisions must be bit-equal, not merely both oracle-valid.
TEST(ExecSync, SingleThreadParityBetweenMutexAndLockFree) {
  const auto tasks = small_dag(42);
  const auto run_once = [&tasks](exec::SyncMode sync) {
    core::CompletionRecorder recorder;
    exec::ExecConfig cfg;
    cfg.threads = 1;
    cfg.banks = 2;
    cfg.sync = sync;
    cfg.duration_scale = 0.0;
    cfg.observer = &recorder;
    exec::ThreadedExecutor executor(cfg);
    const auto report = executor.run(std::make_unique<trace::VectorStream>(
        std::make_shared<const std::vector<trace::TaskRecord>>(tasks)));
    EXPECT_FALSE(report.deadlocked) << report.diagnosis;
    EXPECT_EQ(report.tasks_completed, tasks.size());
    return std::make_pair(recorder.order(), report);
  };
  const auto [mutex_order, mutex_report] = run_once(exec::SyncMode::kMutex);
  const auto [lf_order, lf_report] = run_once(exec::SyncMode::kLockFree);
  EXPECT_EQ(mutex_order, lf_order)
      << "backends must make identical resolver decisions";
  EXPECT_EQ(mutex_report.resolver.granted, lf_report.resolver.granted);
  EXPECT_EQ(mutex_report.resolver.queued, lf_report.resolver.queued);
  EXPECT_EQ(mutex_report.tables.lookups, lf_report.tables.lookups);
  EXPECT_EQ(mutex_report.sync_mode, exec::SyncMode::kMutex);
  EXPECT_EQ(lf_report.sync_mode, exec::SyncMode::kLockFree);
}

struct SyncGridCase {
  exec::SyncMode sync;
  std::uint32_t threads;
  MatchMode mode;
  std::uint64_t seed;
};

class ExecSyncGrid : public ::testing::TestWithParam<SyncGridCase> {};

TEST_P(ExecSyncGrid, CompletionOrderRespectsDependencies) {
  const auto& param = GetParam();
  exec::ExecConfig cfg;
  cfg.threads = param.threads;
  cfg.banks = 4;
  cfg.sync = param.sync;
  cfg.match_mode = param.mode;
  cfg.duration_scale = 0.05;
  const auto report = run_validated(small_dag(param.seed), cfg);
  EXPECT_EQ(report.sync_mode, param.sync);
  if (param.sync == exec::SyncMode::kLockFree) {
    // Every lockfree finish is delegated, so combining telemetry must be
    // live on any completed run.
    EXPECT_GT(report.sync.combined_requests, 0u);
    EXPECT_GT(report.sync.combined_batches, 0u);
    EXPECT_EQ(report.sync.lock_acquisitions, 0u);
  } else {
    EXPECT_GT(report.sync.lock_acquisitions, 0u);
    EXPECT_EQ(report.sync.combined_requests, 0u);
  }
}

std::vector<SyncGridCase> sync_grid_cases() {
  std::vector<SyncGridCase> cases;
  for (const exec::SyncMode sync :
       {exec::SyncMode::kMutex, exec::SyncMode::kLockFree}) {
    for (const std::uint32_t threads : {2u, 4u, 8u}) {
      for (const MatchMode mode :
           {MatchMode::kBaseAddr, MatchMode::kRange}) {
        for (const std::uint64_t seed : {3ull, 11ull}) {
          cases.push_back({sync, threads, mode, seed});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    SyncThreadsModesSeeds, ExecSyncGrid,
    ::testing::ValuesIn(sync_grid_cases()), [](const auto& info) {
      return std::string(exec::to_string(info.param.sync)) + "_t" +
             std::to_string(info.param.threads) + "_" +
             std::string(info.param.mode == MatchMode::kRange ? "range"
                                                              : "base") +
             "_s" + std::to_string(info.param.seed);
    });

// --- Deadlock diagnosis parity in lockfree mode -------------------------------

TEST(ExecSync, LockFreeCapacityDeadlockIsDiagnosed) {
  // The lockfree backend detects stalls via failed slot claims; a task
  // that can never fit must still produce the exact capacity-deadlock
  // diagnosis, not a livelock of claim retries.
  std::vector<trace::TaskRecord> tasks(1);
  tasks[0].serial = 0;
  tasks[0].params = {core::out(0x1000), core::out(0x2000),
                     core::out(0x3000), core::out(0x4000)};
  for (const std::uint32_t threads : {1u, 2u}) {
    SCOPED_TRACE(threads);
    exec::ExecConfig cfg;
    cfg.threads = threads;
    cfg.banks = 1;
    cfg.sync = exec::SyncMode::kLockFree;
    cfg.dep_table_capacity = 2;
    exec::ThreadedExecutor executor(cfg);
    const auto report = executor.run(std::make_unique<trace::VectorStream>(
        std::make_shared<const std::vector<trace::TaskRecord>>(tasks)));
    EXPECT_TRUE(report.deadlocked);
    EXPECT_NE(report.diagnosis.find("capacity deadlock"), std::string::npos)
        << report.diagnosis;
    EXPECT_EQ(report.tasks_completed, 0u);
  }
}

TEST(ExecSync, LockFreeStructuralOverflowIsDiagnosed) {
  std::vector<trace::TaskRecord> tasks(6);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i].serial = i;
    tasks[i].params = {core::out(0x1000)};
  }
  exec::ExecConfig cfg;
  cfg.threads = 1;
  cfg.sync = exec::SyncMode::kLockFree;
  cfg.allow_dummies = false;
  cfg.kick_off_capacity = 2;
  exec::ThreadedExecutor executor(cfg);
  const auto report = executor.run(std::make_unique<trace::VectorStream>(
      std::make_shared<const std::vector<trace::TaskRecord>>(tasks)));
  EXPECT_TRUE(report.deadlocked);
  EXPECT_NE(report.diagnosis.find("structural"), std::string::npos)
      << report.diagnosis;
}

// --- Engine adapter / telemetry contract --------------------------------------

TEST(ExecSync, SyncTelemetryFlowsThroughEngineAndCsv) {
  const auto& registry = engine::EngineRegistry::builtins();
  engine::EngineParams params;
  params.threads = 4;
  params.banks = 2;
  params.sync = exec::SyncMode::kLockFree;
  EXPECT_NE(params.label().find("sync=lockfree"), std::string::npos);

  const auto tasks = small_dag(1, 200);
  const auto eng = registry.make("exec-threads", params);
  const auto report = eng->run(std::make_unique<trace::VectorStream>(
      std::make_shared<const std::vector<trace::TaskRecord>>(tasks)));
  ASSERT_FALSE(report.deadlocked) << report.diagnosis;
  EXPECT_EQ(report.exec_sync, "lockfree");
  EXPECT_GT(report.exec_combined_requests, 0u);
  EXPECT_GT(report.exec_combined_batches, 0u);
  EXPECT_GE(report.exec_max_combined_batch, 1u);
  EXPECT_EQ(report.exec_lock_acquisitions, 0u);
  // Space snapshots are retired on every combiner batch, so any lockfree
  // run with at least one batch retires; advances follow from finish().
  EXPECT_GT(report.exec_epoch_advances, 0u);

  // Every sync column rides the shared CSV schema, aligned with its row.
  const auto header = engine::RunReport::csv_header();
  const auto row = report.csv_row();
  ASSERT_EQ(header.size(), row.size());
  const auto cell = [&](const char* name) {
    const auto col = std::find(header.begin(), header.end(), name);
    EXPECT_NE(col, header.end()) << name;
    return col == header.end()
               ? std::string{}
               : row[static_cast<std::size_t>(col - header.begin())];
  };
  EXPECT_EQ(cell("exec_sync"), "lockfree");
  EXPECT_NE(cell("exec_combined_requests"), "0");
  for (const char* name :
       {"exec_cas_retries", "exec_combined_batches",
        "exec_max_combined_batch", "exec_slot_claim_failures",
        "exec_epoch_advances", "exec_epoch_reclaimed"}) {
    EXPECT_FALSE(cell(name).empty()) << name;
  }

  // The mutex default stamps its own mode, keeping series separable.
  engine::EngineParams mutex_params;
  mutex_params.threads = 2;
  const auto mutex_report =
      registry.make("exec-threads", mutex_params)
          ->run(std::make_unique<trace::VectorStream>(
              std::make_shared<const std::vector<trace::TaskRecord>>(tasks)));
  ASSERT_FALSE(mutex_report.deadlocked) << mutex_report.diagnosis;
  EXPECT_EQ(mutex_report.exec_sync, "mutex");
  EXPECT_GT(mutex_report.exec_lock_acquisitions, 0u);
}

}  // namespace
}  // namespace nexuspp
