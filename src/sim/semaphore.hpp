#pragma once
// Counting semaphore for modeling limited hardware resources (e.g. the
// paper's "no more than 32 tasks can access the memory at a given time").
// Exact handoff: release() grants permits to the earliest waiters whose
// request fits, preserving arrival order and determinism.

#include <coroutine>
#include <cstdint>
#include <deque>

#include "sim/simulator.hpp"

namespace nexuspp::sim {

class Semaphore {
 public:
  Semaphore(Simulator& sim, std::int64_t permits)
      : sim_(&sim), permits_(permits), capacity_(permits) {
    if (permits <= 0) throw SimError("Semaphore permits must be >= 1");
  }
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  /// Awaitable acquire of `n` permits (FIFO order among blocked acquirers).
  [[nodiscard]] auto acquire(std::int64_t n = 1) {
    struct Awaiter {
      Semaphore* sem;
      std::int64_t n;
      [[nodiscard]] bool await_ready() {
        // FIFO fairness: cannot overtake already-blocked acquirers.
        if (sem->waiters_.empty() && sem->permits_ >= n) {
          sem->permits_ -= n;
          sem->note_in_use();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        ++sem->stats_.blocks;
        sem->waiters_.push_back(Waiter{h, n});
      }
      void await_resume() const noexcept {}
    };
    if (n <= 0 || n > capacity_) {
      throw SimError("Semaphore::acquire: bad permit count");
    }
    ++stats_.acquires;
    return Awaiter{this, n};
  }

  /// Returns `n` permits and admits as many blocked acquirers as now fit.
  void release(std::int64_t n = 1) {
    if (n <= 0) throw SimError("Semaphore::release: bad permit count");
    permits_ += n;
    if (permits_ > capacity_) {
      throw SimError("Semaphore::release: exceeded capacity");
    }
    while (!waiters_.empty() && waiters_.front().n <= permits_) {
      const Waiter w = waiters_.front();
      waiters_.pop_front();
      permits_ -= w.n;
      note_in_use();
      sim_->schedule_now(w.handle);
    }
  }

  [[nodiscard]] std::int64_t available() const noexcept { return permits_; }
  [[nodiscard]] std::int64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t waiter_count() const noexcept {
    return waiters_.size();
  }

  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t blocks = 0;
    std::int64_t max_in_use = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::int64_t n;
  };

  void note_in_use() noexcept {
    const std::int64_t in_use = capacity_ - permits_;
    if (in_use > stats_.max_in_use) stats_.max_in_use = in_use;
  }

  Simulator* sim_;
  std::int64_t permits_;
  std::int64_t capacity_;
  std::deque<Waiter> waiters_;
  Stats stats_;
};

}  // namespace nexuspp::sim
