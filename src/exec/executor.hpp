#pragma once
// ThreadedExecutor: a real concurrent StarSs executor — the first backend
// that *runs* task graphs on worker threads instead of simulating them.
//
// One master (the calling thread) pulls TaskRecords from any
// trace::TaskStream in submission order and registers them with the
// exec::ShardedResolver (core::Resolver semantics behind
// BankPartition-keyed shard locks). Ready tasks go to a shared FIFO run
// queue; `threads` workers pop them, execute a spin-calibrated synthetic
// kernel honoring the record's exec_time, then release the task's accesses
// — kicking dependants into the queue. Capacity stalls block the master
// until finishes free space, exactly like the Write-TP/Check-Deps stalls
// of the simulated Maestro; a stall that can never resolve (nothing left
// in flight, or a structural limit) terminates the run with a deadlock
// diagnosis instead of hanging.
//
// threads == 1 runs a fully inline master-worker loop on the calling
// thread: no concurrency, hence a *stable, reproducible completion order*
// — the determinism anchor the multi-threaded runs are differentially
// tested against (same GraphOracle-validated partial order, arbitrary
// interleaving).
//
// The report carries real wall-clock results (tasks/sec, per-worker
// utilization, shard-lock contention) next to the structural/hazard
// telemetry shared with the simulated engines; ordering evidence flows
// through core::ExecutionObserver (on_completed fires before accesses are
// released, so recorded completion order is always oracle-checkable).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/observer.hpp"
#include "core/resolver.hpp"
#include "core/types.hpp"
#include "exec/kernels.hpp"
#include "exec/sharded_resolver.hpp"
#include "obs/timeline.hpp"
#include "trace/trace.hpp"
#include "util/stats.hpp"

namespace nexuspp::exec {

struct ExecConfig {
  std::uint32_t threads = 4;  ///< worker pool size (1 = deterministic inline)
  std::uint32_t banks = 1;    ///< resolver lock/table shards
  std::uint32_t region_bytes = 256;
  core::MatchMode match_mode = core::MatchMode::kBaseAddr;
  /// Machine totals, split evenly across shards — same meaning as the
  /// simulated engines' capacity knobs.
  std::uint32_t task_pool_capacity = 16384;
  std::uint32_t dep_table_capacity = 65536;
  std::uint32_t kick_off_capacity = 8;
  bool allow_dummies = true;
  /// Shard serialization backend (mutex lock vs delegation/combining —
  /// see sharded_resolver.hpp).
  SyncMode sync = SyncMode::kMutex;
  /// Multiplier on trace exec times (1.0 honors them; tests shrink it).
  double duration_scale = 1.0;
  /// Kernel body workers run per task (see exec/kernels.hpp). kSpin is
  /// the status-quo pure delay; the other kinds convert the (scaled)
  /// trace duration into calibrated work units with a real resource
  /// signature. Simulated engines never see this knob, so sim-vs-real
  /// comparisons stay on identical trace durations.
  KernelConfig kernel{};
  /// Optional execution-event sink (not owned; must outlive run()).
  core::ExecutionObserver* observer = nullptr;
  /// Tracing knobs (carried from EngineParams for the adapter's benefit).
  obs::TimelineOptions timeline{};
  /// Optional per-run timeline recorder (not owned; must outlive run()).
  /// Null — the default — compiles every hook site down to a pointer test,
  /// keeping the instrumented build within noise of the no-hooks one.
  obs::TimelineRecorder* timeline_recorder = nullptr;

  void validate() const;

  /// The resolver slice of this config — the one place the field pairing
  /// is spelled out.
  [[nodiscard]] ShardedResolverConfig resolver_config() const;
};

struct ExecReport {
  std::uint64_t tasks_expected = 0;
  std::uint64_t tasks_submitted = 0;
  std::uint64_t tasks_completed = 0;
  bool deadlocked = false;
  std::string diagnosis;

  // --- Real wall-clock results ----------------------------------------------
  double wall_ns = 0.0;        ///< run start to last completion
  double tasks_per_sec = 0.0;  ///< completed / wall seconds
  double total_exec_ns = 0.0;  ///< sum of kernel spin budgets (scaled)
  std::vector<double> worker_busy_ns;     ///< per worker: kernel + release
  std::vector<double> worker_utilization; ///< per worker: busy / wall
  double avg_utilization = 0.0;
  /// Per-task turnaround (registration to kernel completion), wall ns.
  util::RunningStats turnaround_ns;
  double submit_busy_ns = 0.0;   ///< master time registering tasks
  double submit_stall_ns = 0.0;  ///< master time blocked on table space

  // --- Resolution telemetry (same meaning as the simulated engines') --------
  core::Resolver::Stats resolver;
  ShardedResolver::TableStats tables;
  ShardedResolver::SyncStats sync;
  std::size_t ready_queue_peak = 0;
  std::uint32_t threads = 0;
  std::uint32_t banks = 0;
  SyncMode sync_mode = SyncMode::kMutex;
  /// Kernel body that ran the tasks, and total calibrated work units it
  /// executed across all workers (0 under kSpin, whose model is time).
  KernelKind kernel = KernelKind::kSpin;
  std::uint64_t kernel_work_units = 0;
};

/// Single-use, like the simulated systems: construct, run once.
class ThreadedExecutor {
 public:
  explicit ThreadedExecutor(ExecConfig config);

  ThreadedExecutor(const ThreadedExecutor&) = delete;
  ThreadedExecutor& operator=(const ThreadedExecutor&) = delete;
  ~ThreadedExecutor();

  /// Executes the whole stream; returns when every task has completed or a
  /// deadlock was diagnosed. Throws std::logic_error on reuse.
  [[nodiscard]] ExecReport run(std::unique_ptr<trace::TaskStream> stream);

  [[nodiscard]] const ExecConfig& config() const noexcept { return config_; }

 private:
  struct Impl;
  ExecConfig config_;
  std::unique_ptr<Impl> impl_;
  bool used_ = false;
};

}  // namespace nexuspp::exec
