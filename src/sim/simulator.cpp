#include "sim/simulator.hpp"

namespace nexuspp::sim {

Simulator::~Simulator() {
  // Drop queued resumptions first (they point into frames we now destroy).
  while (!queue_.empty()) queue_.pop();
  for (auto& p : processes_) {
    if (p.handle) p.handle.destroy();
  }
}

void Simulator::spawn(Co<void> process, std::string name) {
  if (!process.valid()) throw SimError("spawn: invalid process");
  auto handle = process.release();
  processes_.push_back(NamedProcess{handle, std::move(name)});
  schedule_now(handle);
}

void Simulator::schedule_in(Time delay, std::coroutine_handle<> h) {
  if (delay < 0) throw SimError("schedule_in: negative delay");
  if (!h) throw SimError("schedule_in: null coroutine handle");
  queue_.push(Scheduled{now_ + delay, next_seq_++, h});
}

void Simulator::step(const Scheduled& item) {
  now_ = item.at;
  ++events_executed_;
  item.handle.resume();
  // Exceptions from top-level processes are captured in their promises;
  // surface the first one found after each step so failures stop the run.
  if (!pending_exception_) {
    for (const auto& p : processes_) {
      if (p.handle && p.handle.done()) {
        auto& promise = p.handle.promise();
        if (promise.exception) {
          pending_exception_ = promise.exception;
          break;
        }
      }
    }
  }
}

Time Simulator::run() {
  while (!queue_.empty()) {
    const Scheduled item = queue_.top();
    queue_.pop();
    step(item);
    if (pending_exception_) std::rethrow_exception(pending_exception_);
  }
  return now_;
}

Time Simulator::run_until(Time deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    const Scheduled item = queue_.top();
    queue_.pop();
    step(item);
    if (pending_exception_) std::rethrow_exception(pending_exception_);
  }
  if (queue_.empty() && now_ < deadline) now_ = deadline;
  return now_;
}

std::size_t Simulator::live_process_count() const {
  std::size_t live = 0;
  for (const auto& p : processes_) {
    if (p.handle && !p.handle.done()) ++live;
  }
  return live;
}

std::vector<std::string> Simulator::live_process_names() const {
  std::vector<std::string> names;
  for (const auto& p : processes_) {
    if (p.handle && !p.handle.done()) names.push_back(p.name);
  }
  return names;
}

}  // namespace nexuspp::sim
