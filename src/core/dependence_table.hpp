#pragma once
// The Dependence Table: where Nexus++ stores the task graph (Table III of
// the paper).
//
// Every base address currently accessed by an in-flight task has one
// *parent* entry recording:
//   - the full address, size and current access mode (`isOut`),
//   - a readers counter (`Rdrs`) counting tasks currently reading it,
//   - a writer-waits flag (`ww`, set when a writer is queued behind
//     readers — the WAR hazard),
//   - a Kick-Off List of up to `kick_off_capacity` task IDs waiting for the
//     address, extensible at run time with *dummy entries*: extra slots
//     whose kick-off lists continue the parent's (the paper's h_D / l_D
//     fields; the last list slot becomes a pointer to the next extension).
//
// Entries that hash alike are chained (the paper's n_v / n_i / p_i linked
// list). This implementation keeps a bucket-head array next to the slot
// pool instead of coalescing chains into the slot array itself; the
// observable behaviour — fixed total capacity, chain walks costing one
// probe per visited entry, dummy entries competing for the same pool — is
// the same, without the relocation corner cases of coalesced hashing.
//
// When a parent's own kick-off list drains while extensions exist, the
// parent's data is copied into the first extension slot, which becomes the
// new parent, and the old slot is freed immediately for reuse ("DT[0xC] can
// now be reused by other memory segments, even before memory segment 0x1C
// is totally removed"). Callers therefore receive the (possibly new) parent
// index back from every pop.

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "core/types.hpp"

namespace nexuspp::core {

struct DependenceTableConfig {
  std::uint32_t capacity = 4096;         ///< total entry slots (Table IV: 4K)
  std::uint32_t kick_off_capacity = 8;   ///< task IDs per kick-off list
  /// Nexus++ feature: extend full kick-off lists with dummy entries. With
  /// this off the table behaves like the original Nexus: once a list is
  /// full, further dependants can never be recorded (structural failure).
  bool allow_dummy_entries = true;

  void validate() const;
};

class DependenceTable {
 public:
  using Index = std::uint32_t;
  static constexpr Index kInvalidIndex = 0xFFFF'FFFFu;

  explicit DependenceTable(DependenceTableConfig config);

  // --- Entry lifecycle ------------------------------------------------------

  struct LookupResult {
    std::optional<Index> index;
    Cost cost;  ///< one read per hash-chain probe
  };
  [[nodiscard]] LookupResult lookup(Addr addr) const;

  struct InsertResult {
    std::optional<Index> index;  ///< nullopt: table full, caller must stall
    Cost cost;
  };
  [[nodiscard]] InsertResult insert(Addr addr, std::uint32_t size,
                                    bool is_out);

  /// Removes an entry whose kick-off list is empty.
  Cost erase(Index index);

  // --- Field access (parent entries) ---------------------------------------

  [[nodiscard]] Addr addr_of(Index index) const;
  [[nodiscard]] std::uint32_t size_of(Index index) const;
  [[nodiscard]] bool is_out(Index index) const;
  [[nodiscard]] std::uint32_t readers(Index index) const;
  [[nodiscard]] bool writer_waits(Index index) const;

  Cost set_is_out(Index index, bool value);
  Cost set_writer_waits(Index index, bool value);
  Cost add_reader(Index index);
  Cost remove_reader(Index index);
  Cost set_readers(Index index, std::uint32_t value);

  // --- Kick-off list --------------------------------------------------------

  struct AppendResult {
    bool ok;  ///< false: no free slot for a needed dummy entry — stall
    /// True when the failure can never resolve by waiting (dummy entries
    /// disabled and the list is full) — the classic-Nexus limitation.
    bool structural = false;
    Cost cost;
  };
  [[nodiscard]] AppendResult kickoff_append(Index parent, TaskId task);

  struct PopResult {
    std::optional<TaskId> task;
    Index parent;  ///< parent index after any dummy-entry promotion
    Cost cost;
  };
  /// Pops the oldest waiting task. Promotion of the first dummy entry (when
  /// the parent's own list drains) happens eagerly inside this call.
  [[nodiscard]] PopResult kickoff_pop(Index parent);

  struct PeekResult {
    std::optional<TaskId> task;
    Cost cost;
  };
  [[nodiscard]] PeekResult kickoff_front(Index parent) const;

  [[nodiscard]] bool kickoff_empty(Index parent) const;
  /// Total waiting tasks across the parent and all dummy extensions.
  [[nodiscard]] std::uint32_t kickoff_length(Index parent) const;
  /// Number of slots (parent + dummies) this entry's kick-off chain uses.
  [[nodiscard]] std::uint32_t kickoff_chain_slots(Index parent) const;

  // --- Capacity & statistics ------------------------------------------------

  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return config_.capacity;
  }
  [[nodiscard]] std::uint32_t free_slot_count() const noexcept {
    return static_cast<std::uint32_t>(free_.size());
  }
  [[nodiscard]] std::uint32_t live_slot_count() const noexcept {
    return config_.capacity - free_slot_count();
  }
  [[nodiscard]] bool empty() const noexcept {
    return live_slot_count() == 0;
  }

  struct Stats {
    std::uint64_t inserts = 0;
    std::uint64_t insert_failures = 0;
    std::uint64_t erases = 0;
    std::uint64_t ko_dummy_allocations = 0;
    std::uint64_t ko_append_failures = 0;
    std::uint64_t promotions = 0;
    std::uint32_t max_live_slots = 0;
    std::uint32_t longest_hash_chain = 0;  ///< max probes in one lookup
    std::uint32_t max_ko_chain_slots = 0;  ///< longest kick-off extension chain
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Slot {
    bool valid = false;
    bool is_ko_dummy = false;
    Addr addr = 0;
    std::uint32_t size = 0;
    bool out = false;
    std::uint32_t rdrs = 0;
    bool ww = false;
    Index next = kInvalidIndex;       ///< hash chain (parents only)
    Index prev = kInvalidIndex;       ///< hash chain (parents only)
    Index ko_next = kInvalidIndex;    ///< next kick-off extension slot
    Index last_dummy = kInvalidIndex; ///< parents: tail of extension chain
    bool has_dummy = false;
    std::deque<TaskId> ko;            ///< this slot's kick-off ids
  };

  [[nodiscard]] std::size_t bucket_of(Addr addr) const noexcept;
  [[nodiscard]] const Slot& parent_slot(Index index) const;
  [[nodiscard]] Slot& parent_slot(Index index);
  [[nodiscard]] std::optional<Index> alloc_slot();
  void free_slot(Index index);
  /// Copies parent data into its first extension slot and frees the parent.
  Index promote(Index parent, Cost& cost);

  DependenceTableConfig config_;
  std::vector<Slot> slots_;
  std::vector<Index> bucket_heads_;
  std::deque<Index> free_;
  Stats stats_;
};

}  // namespace nexuspp::core
