#pragma once
// task-bench dependence patterns: the timestep-grid workload family.
//
// The task-bench benchmark (Slaughter et al.) models a workload as a
// width x timesteps grid: task (t, p) is "point p at timestep t", and its
// inputs are the outputs of a *dependence set* of points from timestep
// t-1, selected by a PatternKind. Sweeping the pattern axis covers the
// scenario diversity the paper's hand-picked kernels (H.264, Gaussian
// elimination) only sample: broadcast trees, butterflies, all-to-all
// barriers, randomized neighborhoods.
//
// StarSs discovers dependencies from addresses, so the grid is mapped to
// a double-buffered address space: point p owns two regions, one per
// timestep parity. Task (t, p) writes (inout) its parity-(t % 2) region
// and reads the parity-((t-1) % 2) region of every dependence point —
// which reproduces the task-bench graph through RAW hazards, plus the
// WAR/WAW hazards real buffer reuse implies (a point's region is
// overwritten two timesteps later). Timestep 0 has no reads.
//
// The dependence sets (t >= 1, W = width, points 0..W-1) are normative —
// docs/WORKLOADS.md carries the same table, and the structural-oracle
// test reimplements them independently and diffs against the generator:
//
//   STENCIL_1D           {p-1, p, p+1} clamped to [0, W)
//   STENCIL_1D_PERIODIC  {p-1, p, p+1} modulo W
//   TREE                 {p / 2} (binary-tree parent; widening broadcast)
//   FFT                  {p, p XOR 2^s}, s = (t-1) mod ceil(log2 W),
//                        partner kept only if < W; {p} when W == 1
//   DOM                  {p-1, p} clamped (downward/diagonal sweep)
//   ALL_TO_ALL           every point [0, W)
//   NEAREST              [p-radius, p+radius] clamped
//   RANDOM_NEAREST       p itself always, plus each other point of the
//                        NEAREST window kept with probability `fraction`,
//                        decided by hash(seed, t, p, q) — deterministic
//                        in the seed, varying per timestep
//   SPREAD               {(p + i*ceil(W/A) + (t-1)) mod W} for
//                        i = 0..A-1, A = max(1, min(radius, W)) —
//                        strided arms rotating one point per timestep
//
// Every emitted dependence list is sorted ascending and deduplicated.
// Per-task durations are uniform (`task_ns`) — the METG granularity axis
// — and keyed only by (t, p) position, never by pattern, so patterns are
// compared on identical task costs.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "trace/trace.hpp"

namespace nexuspp::workloads {

enum class PatternKind : std::uint8_t {
  kStencil1D,
  kStencil1DPeriodic,
  kTree,
  kFft,
  kDom,
  kAllToAll,
  kNearest,
  kRandomNearest,
  kSpread,
};

/// Every kind, in declaration order (tests and benches iterate this).
[[nodiscard]] const std::vector<PatternKind>& all_pattern_kinds();

[[nodiscard]] const char* to_string(PatternKind kind) noexcept;

/// Parses "stencil1d" / "stencil1d-periodic" / "tree" / "fft" / "dom" /
/// "all-to-all" / "nearest" / "random-nearest" / "spread"; throws
/// std::invalid_argument listing the accepted names.
[[nodiscard]] PatternKind pattern_kind_from_string(const std::string& name);

struct PatternConfig {
  PatternKind kind = PatternKind::kStencil1D;
  std::uint32_t width = 16;  ///< points per timestep
  std::uint32_t steps = 8;   ///< timesteps; tasks = width * steps
  /// NEAREST / RANDOM_NEAREST window reach (each side); SPREAD arm count.
  std::uint32_t radius = 2;
  /// RANDOM_NEAREST: keep probability for non-self window points, [0, 1].
  double fraction = 0.5;
  /// Uniform per-task duration — the METG granularity axis.
  std::uint64_t task_ns = 5'000;
  std::uint64_t seed = 42;
  core::Addr base = 0xC000'0000;   ///< start of the double-buffered space
  std::uint32_t point_bytes = 64;  ///< owned region per (point, parity)

  void validate() const;
};

/// Address of point `p`'s buffer for timestep parity `parity` (0 or 1).
[[nodiscard]] core::Addr pattern_point_addr(const PatternConfig& cfg,
                                            std::uint32_t p,
                                            std::uint32_t parity) noexcept;

/// The normative dependence set: points of timestep t-1 whose outputs
/// task (t, p) reads. Sorted ascending, deduplicated; empty for t == 0.
/// This is the function the generator emits accesses from and the
/// structural-oracle test diffs an independent reimplementation against.
[[nodiscard]] std::vector<std::uint32_t> pattern_deps(
    const PatternConfig& cfg, std::uint32_t t, std::uint32_t p);

[[nodiscard]] std::uint64_t pattern_task_count(
    const PatternConfig& cfg) noexcept;

/// Materializes the full trace in submission order (timestep-major,
/// point-minor), serials 0..tasks-1.
[[nodiscard]] std::shared_ptr<const std::vector<trace::TaskRecord>>
make_pattern_trace(const PatternConfig& cfg);

/// Fresh stream over a shared trace (one per simulation run).
[[nodiscard]] std::unique_ptr<trace::TaskStream> make_pattern_stream(
    std::shared_ptr<const std::vector<trace::TaskRecord>> tasks);

}  // namespace nexuspp::workloads
