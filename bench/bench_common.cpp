#include "bench_common.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <stdexcept>

namespace nexuspp::bench {

namespace {

/// "1"/"true" means stdout; anything else is a file path.
void emit_to(const char* env_value, const std::string& what,
             const std::function<void(std::ostream&)>& write) {
  const std::string value(env_value);
  if (value == "1" || value == "true") {
    write(std::cout);
    return;
  }
  // Truncate: appending would stack duplicate CSV headers / concatenated
  // JSON arrays across runs. One file holds one run's output.
  std::ofstream file(value, std::ios::trunc);
  if (!file) {
    std::cerr << "bench: cannot open " << value << " for " << what << "\n";
    return;
  }
  write(file);
}

}  // namespace

bool full_mode() {
  const char* env = std::getenv("NEXUSPP_BENCH_FULL");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

engine::SweepOptions sweep_options() {
  engine::SweepOptions options;
  options.threads = 4;
  if (const char* env = std::getenv("NEXUSPP_SWEEP_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) options.threads = static_cast<unsigned>(parsed);
  }
  return options;
}

std::vector<engine::SweepResult> run_sweep(const engine::SweepSpec& spec) {
  engine::SweepDriver driver(engine::EngineRegistry::builtins(),
                             sweep_options());
  auto results = driver.run(spec);
  // Telemetry goes to stderr: stdout stays clean for CSV/JSON consumers.
  std::cerr << "[sweep] " << results.size() << " points on "
            << driver.last_threads_used() << " threads in "
            << util::fmt_f(driver.last_wall_seconds(), 2)
            << " s (peak concurrency " << driver.last_peak_concurrency()
            << ")\n";
  return results;
}

namespace {

bool targets_stdout(const char* env_value) {
  return env_value != nullptr && (std::string(env_value) == "1" ||
                                  std::string(env_value) == "true");
}

bool machine_stdout() {
  return targets_stdout(std::getenv("NEXUSPP_BENCH_CSV")) ||
         targets_stdout(std::getenv("NEXUSPP_BENCH_JSON"));
}

}  // namespace

void note(const std::string& text) {
  (machine_stdout() ? std::cerr : std::cout) << text;
}

void emit(const std::string& title,
          const std::vector<engine::SweepResult>& results,
          const std::vector<engine::SweepDriver::Column>& extra) {
  // When a machine-readable format targets stdout, the human table moves
  // to stderr so `bench > data.csv` stays parseable.
  (machine_stdout() ? std::cerr : std::cout)
      << engine::SweepDriver::to_table(title, results, extra).to_string()
      << "\n";
  if (const char* env = std::getenv("NEXUSPP_BENCH_CSV")) {
    emit_to(env, "CSV", [&](std::ostream& os) {
      engine::SweepDriver::write_csv(results, os);
    });
  }
  if (const char* env = std::getenv("NEXUSPP_BENCH_JSON")) {
    emit_to(env, "JSON", [&](std::ostream& os) {
      engine::SweepDriver::write_json(results, os);
    });
  }
}

void emit_table(const util::Table& table) {
  (machine_stdout() ? std::cerr : std::cout) << table.to_string() << "\n";
  if (const char* env = std::getenv("NEXUSPP_BENCH_CSV")) {
    emit_to(env, "CSV", [&](std::ostream& os) { os << table.to_csv(); });
  }
}

std::vector<std::uint32_t> cores_to_256() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256};
}

std::vector<std::uint32_t> cores_to_64() { return {1, 2, 4, 8, 16, 32, 64}; }

std::vector<engine::EngineParams> worker_axis(
    const std::vector<std::uint32_t>& cores, engine::EngineParams base) {
  std::vector<engine::EngineParams> axis;
  axis.reserve(cores.size());
  for (const std::uint32_t n : cores) {
    engine::EngineParams p = base;
    p.num_workers = n;
    axis.push_back(p);
  }
  return axis;
}

std::vector<SeriesPoint> speedup_series(const std::string& engine_name,
                                        const StreamFactory& factory,
                                        const std::vector<std::uint32_t>& cores,
                                        engine::EngineParams base) {
  engine::SweepSpec spec;
  spec.workload("workload", factory);
  spec.grid({engine_name}, {"workload"}, worker_axis(cores, base));
  const auto results = bench::run_sweep(spec);

  std::vector<SeriesPoint> out;
  out.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    // A failed point is either a diagnosed deadlock or an exception the
    // driver routed into SweepResult::error; both invalidate the series.
    if (results[i].failed()) {
      throw std::runtime_error(
          "speedup_series: " + engine_name + " failed at " +
          std::to_string(cores[i]) + " cores: " +
          (results[i].error.empty() ? results[i].report.diagnosis
                                    : results[i].error));
    }
    SeriesPoint point;
    point.cores = cores[i];
    point.report = results[i].report;
    point.speedup = results[i].speedup;
    out.push_back(std::move(point));
  }
  return out;
}

}  // namespace nexuspp::bench
