#pragma once
// Bounded FIFO channel between simulated processes.
//
// This models the hardware FIFO lists of the paper (TDs Sizes, New Tasks,
// Global Ready Tasks, per-core CiRdyTasks/CiFinTasks, ...): fixed capacity,
// write stalls the producer when full (e.g. "If this list is full, the
// Master Core stalls"), read stalls the consumer when empty.
//
// The implementation uses exact handoff rather than notify-and-retry:
// a blocked putter's item is moved in the moment a slot frees, and a blocked
// getter receives its item the moment one arrives. Waiters are served in
// arrival order, keeping runs deterministic.

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>

#include "sim/simulator.hpp"

namespace nexuspp::sim {

template <typename T>
class Fifo {
 public:
  Fifo(Simulator& sim, std::size_t capacity, std::string name = {})
      : sim_(&sim), capacity_(capacity), name_(std::move(name)) {
    if (capacity_ == 0) throw SimError("Fifo capacity must be >= 1");
  }
  // Pinned: waiter lists hold coroutine handles that point back into this
  // object, so a copied or moved Fifo would leave dangling waiters.
  Fifo(const Fifo&) = delete;
  Fifo& operator=(const Fifo&) = delete;
  Fifo(Fifo&&) = delete;
  Fifo& operator=(Fifo&&) = delete;

  /// Awaitable put: completes immediately if a slot (or a waiting getter)
  /// is available, otherwise suspends until one frees.
  [[nodiscard]] auto put(T value) {
    struct Awaiter {
      Fifo* fifo;
      T value;
      [[nodiscard]] bool await_ready() {
        return fifo->try_put_internal(value);
      }
      void await_suspend(std::coroutine_handle<> h) {
        ++fifo->stats_.put_blocks;
        fifo->putters_.push_back(WaitingPut{h, std::move(value)});
      }
      void await_resume() const noexcept {}
    };
    ++stats_.puts;
    return Awaiter{this, std::move(value)};
  }

  /// Awaitable get: completes immediately if an item is available,
  /// otherwise suspends until one arrives.
  [[nodiscard]] auto get() {
    struct Awaiter {
      Fifo* fifo;
      std::optional<T> result;
      [[nodiscard]] bool await_ready() {
        result = fifo->try_get_internal();
        return result.has_value();
      }
      void await_suspend(std::coroutine_handle<> h) {
        ++fifo->stats_.get_blocks;
        fifo->getters_.push_back(WaitingGet{h, this});
      }
      T await_resume() {
        assert(result.has_value());
        return std::move(*result);
      }
    };
    ++stats_.gets;
    return Awaiter{this, std::nullopt};
  }

  /// Non-blocking variants for test instrumentation and drain logic.
  [[nodiscard]] bool try_put(T value) {
    const bool ok = try_put_internal(value);
    if (ok) ++stats_.puts;
    return ok;
  }
  [[nodiscard]] std::optional<T> try_get() {
    auto v = try_get_internal();
    if (v) ++stats_.gets;
    return v;
  }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] bool full() const noexcept {
    return items_.size() >= capacity_;
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  struct Stats {
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t put_blocks = 0;  ///< puts that had to stall
    std::uint64_t get_blocks = 0;  ///< gets that had to stall
    std::size_t max_occupancy = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct WaitingPut {
    std::coroutine_handle<> handle;
    T value;
  };
  struct WaitingGet {
    std::coroutine_handle<> handle;
    void* awaiter;  // type-erased Awaiter*, used to deliver the item
  };

  // Invariants: getters_ non-empty implies items_ empty;
  //             putters_ non-empty implies items_ full.

  bool try_put_internal(T& value) {
    if (!getters_.empty()) {
      // Hand the item straight to the earliest waiting getter.
      assert(items_.empty());
      auto waiter = getters_.front();
      getters_.pop_front();
      deliver_to_getter(waiter, std::move(value));
      return true;
    }
    if (items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    stats_.max_occupancy = std::max(stats_.max_occupancy, items_.size());
    return true;
  }

  std::optional<T> try_get_internal() {
    if (items_.empty()) return std::nullopt;
    T front = std::move(items_.front());
    items_.pop_front();
    // A freed slot immediately admits the earliest blocked putter.
    if (!putters_.empty()) {
      auto waiter = std::move(putters_.front());
      putters_.pop_front();
      items_.push_back(std::move(waiter.value));
      stats_.max_occupancy = std::max(stats_.max_occupancy, items_.size());
      sim_->schedule_now(waiter.handle);
    }
    return front;
  }

  void deliver_to_getter(const WaitingGet& waiter, T value) {
    // The getter's Awaiter outlives its suspension; fill its result slot.
    using GetAwaiter =
        std::remove_reference_t<decltype(std::declval<Fifo&>().get())>;
    auto* awaiter = static_cast<GetAwaiter*>(waiter.awaiter);
    awaiter->result = std::move(value);
    sim_->schedule_now(waiter.handle);
  }

  Simulator* sim_;
  std::size_t capacity_;
  std::string name_;
  std::deque<T> items_;
  std::deque<WaitingPut> putters_;
  std::deque<WaitingGet> getters_;
  Stats stats_;
};

}  // namespace nexuspp::sim
