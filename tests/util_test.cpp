// Tests for the util library: RNG determinism and distributions, streaming
// statistics, histograms, table rendering, and flag parsing.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace nexuspp {
namespace {

using util::Flags;
using util::Histogram;
using util::Rng;
using util::RunningStats;
using util::Table;

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next()) << "diverged at step " << i;
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 95);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowZeroBoundIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, NormalMomentsApproximate) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, GammaMomentsApproximate) {
  // Gamma(k, theta): mean k*theta, variance k*theta^2.
  Rng rng(17);
  const double shape = 4.0;
  const double scale = 2.95;  // mean 11.8 — the H.264 task execution mean
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.gamma(shape, scale));
  EXPECT_NEAR(stats.mean(), shape * scale, 0.1);
  EXPECT_NEAR(stats.variance(), shape * scale * scale, 0.7);
}

TEST(Rng, GammaShapeBelowOne) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.gamma(0.5, 1.0);
    ASSERT_GE(v, 0.0);
    stats.add(v);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.05);
}

TEST(Rng, GammaRejectsBadArguments) {
  Rng rng(23);
  EXPECT_EQ(rng.gamma(0.0, 1.0), 0.0);
  EXPECT_EQ(rng.gamma(1.0, -1.0), 0.0);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(29);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-5, 5);
    whole.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeMomentsExactBeyondReservoirCapacity) {
  // The moments path is Chan's parallel update — it must stay exact (to
  // rounding) no matter how many samples each side saw, independent of the
  // reservoir.
  Rng rng(31);
  RunningStats whole;
  RunningStats parts[3];
  const std::size_t n = 5 * RunningStats::kReservoirCapacity;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = rng.gamma(2.0, 50.0);
    whole.add(v);
    parts[i % 3].add(v);
  }
  RunningStats merged;
  for (auto& p : parts) merged.merge(p);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9 * whole.mean());
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-9 * whole.variance());
  EXPECT_NEAR(merged.sum(), whole.sum(), 1e-9 * whole.sum());
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
  EXPECT_NEAR(merged.stddev(), whole.stddev(), 1e-9 * whole.stddev());
}

TEST(RunningStats, MergePercentilesExactWhileReservoirsFit) {
  // Until the combined sample count exceeds the reservoir, merge is a
  // concatenation and percentiles equal the directly-accumulated exact
  // ones.
  RunningStats direct;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double v = (i * 7919) % 1000;
    direct.add(v);
    (i < 500 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_DOUBLE_EQ(left.p50(), direct.p50());
  EXPECT_DOUBLE_EQ(left.p95(), direct.p95());
  EXPECT_DOUBLE_EQ(left.p99(), direct.p99());
  EXPECT_DOUBLE_EQ(left.percentile(0.0), direct.percentile(0.0));
  EXPECT_DOUBLE_EQ(left.percentile(1.0), direct.percentile(1.0));
}

TEST(RunningStats, BatchPercentilesEqualPerCallResults) {
  // percentiles({...}) is the single-sort batch form the report paths use
  // for p50/p95/p99; it must agree with percentile(q) per entry exactly,
  // including out-of-order and duplicate quantiles.
  RunningStats s;
  EXPECT_EQ(s.percentiles({0.5, 0.95}), (std::vector<double>{0.0, 0.0}));

  Rng rng(17);
  for (int i = 0; i < 10'000; ++i) s.add(rng.gamma(2.0, 100.0));
  const std::vector<double> qs{0.99, 0.0, 0.5, 0.95, 0.5, 1.0};
  const auto batch = s.percentiles(qs);
  ASSERT_EQ(batch.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], s.percentile(qs[i])) << "q=" << qs[i];
  }
  EXPECT_DOUBLE_EQ(batch[0], s.p99());
  EXPECT_DOUBLE_EQ(batch[2], s.p50());
  EXPECT_DOUBLE_EQ(batch[3], s.p95());
}

TEST(RunningStats, MergedReservoirIsDeterministic) {
  // Two independent replays of the same add/merge sequence must agree on
  // every percentile bit-for-bit — the property the parallel sweep relies
  // on for reproducible reports. Sized so the merge overflows the
  // reservoir and takes the weighted-downsample path.
  auto build = [] {
    RunningStats parts[4];
    for (int p = 0; p < 4; ++p) {
      const std::size_t n = RunningStats::kReservoirCapacity / 2 +
                            static_cast<std::size_t>(p) * 1000;
      for (std::size_t i = 0; i < n; ++i) {
        parts[p].add(static_cast<double>((i * 2654435761u + p) % 100000));
      }
    }
    RunningStats merged;
    for (auto& p : parts) merged.merge(p);
    return merged;
  };
  const RunningStats a = build();
  const RunningStats b = build();
  EXPECT_EQ(a.count(), b.count());
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(q), b.percentile(q)) << "q=" << q;
  }
  // Ordered and inside the observed range.
  EXPECT_LE(a.min(), a.p50());
  EXPECT_LE(a.p50(), a.p95());
  EXPECT_LE(a.p95(), a.p99());
  EXPECT_LE(a.p99(), a.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Histogram, BucketsAndEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);   // bucket 0
  h.add(9.99);  // bucket 9
  h.add(5.0);   // bucket 5
  h.add(-1.0);  // underflow
  h.add(10.0);  // overflow (hi is exclusive)
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.bucket(5), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, QuantileApproximation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

TEST(Table, AlignsColumns) {
  Table t("demo");
  t.header({"a", "long-header", "c"});
  t.row({"1", "2", "3"});
  t.row({"wide-cell", "x", "y"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("long-header"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t("");
  t.header({"x", "y"});
  t.row({"a,b", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableFmt, Formats) {
  EXPECT_EQ(util::fmt_f(3.14159, 2), "3.14");
  EXPECT_EQ(util::fmt_x(54.0, 1), "54.0x");
  EXPECT_EQ(util::fmt_ns(12.0), "12.00 ns");
  EXPECT_EQ(util::fmt_ns(1500.0), "1.50 us");
  EXPECT_EQ(util::fmt_ns(2.5e6), "2.50 ms");
  EXPECT_EQ(util::fmt_ns(3.2e9), "3.20 s");
  EXPECT_EQ(util::fmt_count(12502499), "12,502,499");
  EXPECT_EQ(util::fmt_count(999), "999");
  EXPECT_EQ(util::fmt_count(0), "0");
}

TEST(Flags, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--cores=64", "--depth", "2", "pos1",
                        "--full"};
  Flags flags(6, argv);
  EXPECT_EQ(flags.get_int("cores", 0), 64);
  EXPECT_EQ(flags.get_int("depth", 0), 2);
  EXPECT_TRUE(flags.has("full"));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos1");
}

TEST(Flags, LastOccurrenceWins) {
  const char* argv[] = {"prog", "--n=1", "--n=2"};
  Flags flags(3, argv);
  EXPECT_EQ(flags.get_int("n", 0), 2);
}

TEST(Flags, FallbacksAndBadNumbers) {
  const char* argv[] = {"prog", "--bad=xyz"};
  Flags flags(2, argv);
  EXPECT_EQ(flags.get_int("bad", 7), 7);
  EXPECT_EQ(flags.get_int("missing", 9), 9);
  EXPECT_DOUBLE_EQ(flags.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(flags.get_or("missing", "dflt"), "dflt");
}

TEST(Flags, BoolParsing) {
  const char* argv[] = {"prog", "--yes=1", "--no=false", "--zero=0"};
  Flags flags(4, argv);
  EXPECT_TRUE(flags.get_bool("yes", false));
  EXPECT_FALSE(flags.get_bool("no", true));
  EXPECT_FALSE(flags.get_bool("zero", true));
  EXPECT_TRUE(flags.get_bool("missing", true));
}

TEST(Flags, KnownBooleanDoesNotSwallowPositional) {
  // Regression: greedy `--name value` used to consume a following
  // positional as the value of a boolean flag.
  const char* argv[] = {"prog", "--verbose", "trace.json"};
  Flags flags(3, argv, {"verbose"});
  EXPECT_TRUE(flags.has("verbose"));
  EXPECT_EQ(flags.get_or("verbose", ""), "1");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "trace.json");
}

TEST(Flags, TrailingBooleanFlag) {
  const char* argv[] = {"prog", "input.trc", "--verbose"};
  Flags flags(3, argv, {"verbose"});
  EXPECT_TRUE(flags.has("verbose"));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "input.trc");
}

TEST(Flags, NegativeNumberValues) {
  const char* argv[] = {"prog", "--delta", "-5", "--bias=-2.5"};
  Flags flags(4, argv);
  EXPECT_EQ(flags.get_int("delta", 0), -5);
  EXPECT_DOUBLE_EQ(flags.get_double("bias", 0.0), -2.5);
  EXPECT_TRUE(flags.positional().empty());
}

TEST(Flags, DoubleDashTerminatesFlagParsing) {
  const char* argv[] = {"prog", "--cores=4", "--", "--not-a-flag", "file"};
  Flags flags(5, argv);
  EXPECT_EQ(flags.get_int("cores", 0), 4);
  EXPECT_FALSE(flags.has("not-a-flag"));
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "--not-a-flag");
  EXPECT_EQ(flags.positional()[1], "file");
}

TEST(Flags, KnownBooleanStillAcceptsEqualsValue) {
  const char* argv[] = {"prog", "--csv=out.csv", "rest"};
  Flags flags(3, argv, {"csv"});
  EXPECT_EQ(flags.get_or("csv", ""), "out.csv");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "rest");
}

TEST(Flags, EnvironmentFallback) {
  ASSERT_EQ(Flags::env_name("bench-full"), "NEXUSPP_BENCH_FULL");
  ::setenv("NEXUSPP_UNIT_TEST_FLAG", "31", 1);
  const char* argv[] = {"prog"};
  Flags flags(1, argv);
  EXPECT_EQ(flags.get_int("unit-test-flag", 0), 31);
  ::unsetenv("NEXUSPP_UNIT_TEST_FLAG");
}

TEST(Flags, CommandLineBeatsEnvironment) {
  ::setenv("NEXUSPP_PRIORITY", "env", 1);
  const char* argv[] = {"prog", "--priority=cli"};
  Flags flags(2, argv);
  EXPECT_EQ(flags.get_or("priority", ""), "cli");
  ::unsetenv("NEXUSPP_PRIORITY");
}

}  // namespace
}  // namespace nexuspp
