#include "workloads/library.hpp"

#include <stdexcept>

#include "workloads/factorization.hpp"
#include "workloads/gaussian.hpp"
#include "workloads/grid.hpp"
#include "workloads/overlap.hpp"
#include "workloads/pattern.hpp"
#include "workloads/random_dag.hpp"
#include "workloads/spatial.hpp"
#include "workloads/wide.hpp"

namespace nexuspp::workloads {

namespace {

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const auto v = std::stoull(value, &used);
    if (used != value.size()) throw std::invalid_argument("trailing junk");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("workload option '" + key +
                                "': expected a non-negative integer, got '" +
                                value + "'");
  }
}

double parse_real(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument("trailing junk");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("workload option '" + key +
                                "': expected a number, got '" + value + "'");
  }
}

}  // namespace

OptionMap::OptionMap(std::vector<std::pair<std::string, std::string>> entries)
    : entries_(std::move(entries)), used_(entries_.size(), false) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    for (std::size_t j = i + 1; j < entries_.size(); ++j) {
      if (entries_[i].first == entries_[j].first) {
        throw std::invalid_argument("duplicate workload option '" +
                                    entries_[i].first + "'");
      }
    }
  }
}

const std::string* OptionMap::find(const std::string& key) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].first == key) {
      used_[i] = true;
      return &entries_[i].second;
    }
  }
  return nullptr;
}

std::uint32_t OptionMap::u32(const std::string& key, std::uint32_t fallback) {
  const auto* v = find(key);
  if (v == nullptr) return fallback;
  const auto wide = parse_u64(key, *v);
  if (wide > 0xFFFF'FFFFull) {
    throw std::invalid_argument("workload option '" + key +
                                "': value does not fit 32 bits");
  }
  return static_cast<std::uint32_t>(wide);
}

std::uint64_t OptionMap::u64(const std::string& key, std::uint64_t fallback) {
  const auto* v = find(key);
  return v == nullptr ? fallback : parse_u64(key, *v);
}

double OptionMap::real(const std::string& key, double fallback) {
  const auto* v = find(key);
  return v == nullptr ? fallback : parse_real(key, *v);
}

std::string OptionMap::str(const std::string& key, std::string fallback) {
  const auto* v = find(key);
  return v == nullptr ? std::move(fallback) : *v;
}

void OptionMap::finish() const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!used_[i]) {
      throw std::invalid_argument("unknown workload option '" +
                                  entries_[i].first +
                                  "' (run with --list-workloads to see each "
                                  "workload's options)");
    }
  }
}

std::pair<std::string, std::vector<std::pair<std::string, std::string>>>
parse_workload_spec(const std::string& spec) {
  const auto colon = spec.find(':');
  std::string name = spec.substr(0, colon);
  if (name.empty()) {
    throw std::invalid_argument("workload spec: empty name in '" + spec +
                                "'");
  }
  std::vector<std::pair<std::string, std::string>> options;
  if (colon == std::string::npos) return {std::move(name), std::move(options)};

  std::string rest = spec.substr(colon + 1);
  std::size_t pos = 0;
  while (pos <= rest.size()) {
    const auto comma = rest.find(',', pos);
    const std::string item =
        rest.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const auto eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("workload spec: expected key=value, got '" +
                                  item + "' in '" + spec + "'");
    }
    options.emplace_back(item.substr(0, eq), item.substr(eq + 1));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return {std::move(name), std::move(options)};
}

void WorkloadLibrary::add(WorkloadEntry entry) {
  entries_.push_back(std::move(entry));
}

std::vector<std::string> WorkloadLibrary::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.name);
  return out;
}

bool WorkloadLibrary::contains(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return true;
  }
  return false;
}

const WorkloadEntry& WorkloadLibrary::resolve(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return e;
  }
  std::string known;
  for (const auto& e : entries_) {
    if (!known.empty()) known += ", ";
    known += e.name;
  }
  throw std::invalid_argument("unknown workload '" + name +
                              "' (registered: " + known + ")");
}

const WorkloadEntry& WorkloadLibrary::info(const std::string& name) const {
  return resolve(name);
}

std::shared_ptr<const std::vector<trace::TaskRecord>>
WorkloadLibrary::make_trace(const std::string& spec) const {
  auto [name, options] = parse_workload_spec(spec);
  const auto& entry = resolve(name);
  OptionMap opts(std::move(options));
  auto trace = entry.build_trace(opts);
  opts.finish();
  return trace;
}

std::unique_ptr<trace::TaskStream> WorkloadLibrary::make_stream(
    const std::string& spec) const {
  auto [name, options] = parse_workload_spec(spec);
  const auto& entry = resolve(name);
  OptionMap opts(std::move(options));
  auto stream = entry.build_stream
                    ? entry.build_stream(opts)
                    : std::make_unique<trace::VectorStream>(
                          entry.build_trace(opts));
  opts.finish();
  return stream;
}

std::function<std::unique_ptr<trace::TaskStream>()>
WorkloadLibrary::make_stream_factory(const std::string& spec) const {
  auto [name, options] = parse_workload_spec(spec);
  const auto& entry = resolve(name);
  if (entry.build_stream) {
    // Lazy generator: validate the options once, then build an
    // independent stream per call. The builder is captured by value so the
    // factory stays valid independent of this library's lifetime.
    auto build = entry.build_stream;
    {
      OptionMap probe(options);
      (void)build(probe);
      probe.finish();
    }
    return [build, options] {
      OptionMap opts(options);
      return build(opts);
    };
  }
  // Eager generator: materialize once, share across sweep threads.
  OptionMap opts(std::move(options));
  auto trace = entry.build_trace(opts);
  opts.finish();
  return [trace] { return std::make_unique<trace::VectorStream>(trace); };
}

namespace {

GridConfig grid_config(OptionMap& o, GridPattern pattern) {
  GridConfig cfg;
  cfg.pattern = pattern;
  cfg.rows = o.u32("rows", cfg.rows);
  cfg.cols = o.u32("cols", cfg.cols);
  cfg.seed = o.u64("seed", cfg.seed);
  return cfg;
}

WorkloadEntry grid_entry(std::string name, std::string summary,
                         GridPattern pattern) {
  WorkloadEntry e;
  e.name = std::move(name);
  e.summary = std::move(summary);
  e.options = "rows=120,cols=68,seed=42";
  e.build_trace = [pattern](OptionMap& o) {
    return make_grid_trace(grid_config(o, pattern));
  };
  return e;
}

FactorizationConfig factorization_config(OptionMap& o) {
  FactorizationConfig cfg;
  cfg.tiles = o.u32("tiles", cfg.tiles);
  cfg.tile_elems = o.u32("tile-elems", cfg.tile_elems);
  cfg.gflops_per_core = o.real("gflops", cfg.gflops_per_core);
  return cfg;
}

WorkloadLibrary build_builtins() {
  WorkloadLibrary lib;

  lib.add(grid_entry("h264",
                     "H.264 macroblock wavefront decode (paper Fig. 4a)",
                     GridPattern::kWavefront));
  lib.add(grid_entry("horizontal", "left-neighbour chains (paper Fig. 4b)",
                     GridPattern::kHorizontal));
  lib.add(grid_entry("vertical", "up-neighbour chains (paper Fig. 4c)",
                     GridPattern::kVertical));
  lib.add(grid_entry("independent", "no shared addresses: scaling ceiling",
                     GridPattern::kIndependent));

  {
    WorkloadEntry e;
    e.name = "gaussian";
    e.summary = "Gaussian elimination DAG (paper Table II); lazy stream";
    e.options = "n=250,gflops=2.0";
    auto config = [](OptionMap& o) {
      GaussianConfig cfg;
      cfg.n = o.u32("n", cfg.n);
      cfg.gflops_per_core = o.real("gflops", cfg.gflops_per_core);
      return cfg;
    };
    e.build_trace = [config](OptionMap& o) {
      auto stream = make_gaussian_stream(config(o));
      auto tasks = std::make_shared<std::vector<trace::TaskRecord>>();
      tasks->reserve(stream->total_tasks());
      while (auto rec = stream->next()) tasks->push_back(std::move(*rec));
      return std::shared_ptr<const std::vector<trace::TaskRecord>>(tasks);
    };
    e.build_stream = [config](OptionMap& o) -> std::unique_ptr<trace::TaskStream> {
      return make_gaussian_stream(config(o));
    };
    lib.add(std::move(e));
  }

  {
    WorkloadEntry e;
    e.name = "tiled-cholesky";
    e.summary = "tiled Cholesky factorization DAG (POTRF/TRSM/SYRK/GEMM)";
    e.options = "tiles=8,tile-elems=64,gflops=2.0";
    e.build_trace = [](OptionMap& o) {
      return make_cholesky_trace(factorization_config(o));
    };
    lib.add(std::move(e));
  }
  {
    WorkloadEntry e;
    e.name = "tiled-lu";
    e.summary = "tiled LU factorization DAG (GETRF/TRSM/GEMM)";
    e.options = "tiles=8,tile-elems=64,gflops=2.0";
    e.build_trace = [](OptionMap& o) {
      return make_lu_trace(factorization_config(o));
    };
    lib.add(std::move(e));
  }
  {
    WorkloadEntry e;
    e.name = "spatial";
    e.summary =
        "sparse spatial decomposition: irregular Moore-neighbour reads";
    e.options =
        "cells-x=16,cells-y=16,steps=4,fill=0.6,cell-bytes=512,"
        "halo-bytes=0,seed=42";
    e.build_trace = [](OptionMap& o) {
      SpatialConfig cfg;
      cfg.cells_x = o.u32("cells-x", cfg.cells_x);
      cfg.cells_y = o.u32("cells-y", cfg.cells_y);
      cfg.steps = o.u32("steps", cfg.steps);
      cfg.fill = o.real("fill", cfg.fill);
      cfg.cell_bytes = o.u32("cell-bytes", cfg.cell_bytes);
      cfg.halo_bytes = o.u32("halo-bytes", cfg.halo_bytes);
      cfg.seed = o.u64("seed", cfg.seed);
      return make_spatial_trace(cfg);
    };
    lib.add(std::move(e));
  }
  {
    WorkloadEntry e;
    e.name = "halo-stencil";
    e.summary = "1D blocked stencil with halo reads (partial overlaps)";
    e.options = "blocks=64,steps=8,block-bytes=1024,halo-bytes=64,seed=42";
    e.build_trace = [](OptionMap& o) {
      HaloStencilConfig cfg;
      cfg.blocks = o.u32("blocks", cfg.blocks);
      cfg.steps = o.u32("steps", cfg.steps);
      cfg.block_bytes = o.u32("block-bytes", cfg.block_bytes);
      cfg.halo_bytes = o.u32("halo-bytes", cfg.halo_bytes);
      cfg.seed = o.u64("seed", cfg.seed);
      return make_halo_stencil_trace(cfg);
    };
    lib.add(std::move(e));
  }
  {
    WorkloadEntry e;
    e.name = "mixed-tiles";
    e.summary = "whole-tile producers, staggered sub-block consumers";
    e.options = "tiles=32,rounds=4,tile-bytes=4096,sub-blocks=4,seed=42";
    e.build_trace = [](OptionMap& o) {
      MixedTilesConfig cfg;
      cfg.tiles = o.u32("tiles", cfg.tiles);
      cfg.rounds = o.u32("rounds", cfg.rounds);
      cfg.tile_bytes = o.u32("tile-bytes", cfg.tile_bytes);
      cfg.sub_blocks = o.u32("sub-blocks", cfg.sub_blocks);
      cfg.seed = o.u64("seed", cfg.seed);
      return make_mixed_tiles_trace(cfg);
    };
    lib.add(std::move(e));
  }
  {
    WorkloadEntry e;
    e.name = "wide";
    e.summary = "wide-task chains stressing dummy-task descriptors";
    e.options = "lanes=8,chain=64,width=12,seed=7";
    e.build_trace = [](OptionMap& o) {
      WideConfig cfg;
      cfg.lanes = o.u32("lanes", cfg.lanes);
      cfg.chain_length = o.u32("chain", cfg.chain_length);
      cfg.width = o.u32("width", cfg.width);
      cfg.seed = o.u64("seed", cfg.seed);
      return make_wide_trace(cfg);
    };
    lib.add(std::move(e));
  }
  {
    WorkloadEntry e;
    e.name = "pattern";
    e.summary =
        "task-bench timestep grid: 9 dependence patterns over width x steps";
    e.options =
        "kind=stencil1d,width=16,steps=8,radius=2,fraction=0.5,"
        "task-ns=5000,point-bytes=64,seed=42";
    e.build_trace = [](OptionMap& o) {
      PatternConfig cfg;
      cfg.kind = pattern_kind_from_string(
          o.str("kind", to_string(cfg.kind)));
      cfg.width = o.u32("width", cfg.width);
      cfg.steps = o.u32("steps", cfg.steps);
      cfg.radius = o.u32("radius", cfg.radius);
      cfg.fraction = o.real("fraction", cfg.fraction);
      cfg.task_ns = o.u64("task-ns", cfg.task_ns);
      cfg.point_bytes = o.u32("point-bytes", cfg.point_bytes);
      cfg.seed = o.u64("seed", cfg.seed);
      return make_pattern_trace(cfg);
    };
    lib.add(std::move(e));
  }
  {
    WorkloadEntry e;
    e.name = "random-dag";
    e.summary = "seeded random task graph over a bounded address pool";
    e.options = "tasks=1000,addrs=64,max-params=4,write-prob=0.35,seed=1";
    e.build_trace = [](OptionMap& o) {
      RandomDagConfig cfg;
      cfg.num_tasks = o.u32("tasks", cfg.num_tasks);
      cfg.addr_space = o.u32("addrs", cfg.addr_space);
      cfg.max_params = o.u32("max-params", cfg.max_params);
      cfg.write_prob = o.real("write-prob", cfg.write_prob);
      cfg.seed = o.u64("seed", cfg.seed);
      return make_random_dag_trace(cfg);
    };
    lib.add(std::move(e));
  }

  return lib;
}

}  // namespace

const WorkloadLibrary& WorkloadLibrary::builtins() {
  static const WorkloadLibrary instance = build_builtins();
  return instance;
}

}  // namespace nexuspp::workloads
