// Tests for the named workload catalog and the application-shaped
// generators it registers: spec parsing, option validation, task-count
// formulas, DAG structure, determinism, and end-to-end completion of the
// factorization / spatial streams on the simulated runtimes.

#include <gtest/gtest.h>

#include <set>

#include "engine/registry.hpp"
#include "workloads/factorization.hpp"
#include "workloads/library.hpp"
#include "workloads/spatial.hpp"

namespace nexuspp {
namespace {

using workloads::WorkloadLibrary;

TEST(WorkloadSpec, ParsesNameAndOptions) {
  const auto [name, opts] =
      workloads::parse_workload_spec("tiled-cholesky:tiles=12,gflops=1.5");
  EXPECT_EQ(name, "tiled-cholesky");
  ASSERT_EQ(opts.size(), 2u);
  EXPECT_EQ(opts[0], (std::pair<std::string, std::string>{"tiles", "12"}));
  EXPECT_EQ(opts[1], (std::pair<std::string, std::string>{"gflops", "1.5"}));
}

TEST(WorkloadSpec, BareNameHasNoOptions) {
  const auto [name, opts] = workloads::parse_workload_spec("spatial");
  EXPECT_EQ(name, "spatial");
  EXPECT_TRUE(opts.empty());
}

TEST(WorkloadSpec, RejectsMalformedSpecs) {
  EXPECT_THROW((void)workloads::parse_workload_spec(""),
               std::invalid_argument);
  EXPECT_THROW((void)workloads::parse_workload_spec(":tiles=2"),
               std::invalid_argument);
  EXPECT_THROW((void)workloads::parse_workload_spec("x:novalue"),
               std::invalid_argument);
  EXPECT_THROW((void)workloads::parse_workload_spec("x:=3"),
               std::invalid_argument);
}

TEST(WorkloadLibraryTest, RegistersApplicationWorkloads) {
  const auto& lib = WorkloadLibrary::builtins();
  for (const char* name :
       {"h264", "gaussian", "tiled-cholesky", "tiled-lu", "spatial",
        "halo-stencil", "mixed-tiles", "wide", "random-dag"}) {
    EXPECT_TRUE(lib.contains(name)) << name;
    EXPECT_FALSE(lib.info(name).summary.empty()) << name;
    EXPECT_FALSE(lib.info(name).options.empty()) << name;
  }
}

TEST(WorkloadLibraryTest, UnknownNameListsRegistered) {
  const auto& lib = WorkloadLibrary::builtins();
  try {
    (void)lib.make_trace("no-such-workload");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("tiled-cholesky"),
              std::string::npos);
  }
}

TEST(WorkloadLibraryTest, DuplicateOptionRejectedAsDuplicate) {
  const auto& lib = WorkloadLibrary::builtins();
  try {
    (void)lib.make_trace("tiled-cholesky:tiles=4,tiles=8");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos)
        << e.what();
  }
}

TEST(WorkloadLibraryTest, UnknownOptionRejected) {
  const auto& lib = WorkloadLibrary::builtins();
  EXPECT_THROW((void)lib.make_trace("tiled-cholesky:rows=4"),
               std::invalid_argument);
  EXPECT_THROW((void)lib.make_trace("spatial:fill=high"),
               std::invalid_argument);
  EXPECT_THROW((void)lib.make_stream("tiled-lu:tiles=banana"),
               std::invalid_argument);
}

TEST(WorkloadLibraryTest, OptionsReachTheGenerators) {
  const auto& lib = WorkloadLibrary::builtins();
  EXPECT_EQ(lib.make_trace("tiled-cholesky:tiles=5")->size(),
            workloads::cholesky_task_count(5));
  EXPECT_EQ(lib.make_trace("tiled-lu:tiles=5")->size(),
            workloads::lu_task_count(5));
  EXPECT_EQ(lib.make_stream("gaussian:n=10")->total_tasks(),
            (10ull * 10 + 10 - 2) / 2);
}

TEST(WorkloadLibraryTest, StreamFactoryIsReusable) {
  const auto& lib = WorkloadLibrary::builtins();
  const auto factory = lib.make_stream_factory("tiled-cholesky:tiles=4");
  const auto total = workloads::cholesky_task_count(4);
  for (int i = 0; i < 2; ++i) {
    auto stream = factory();
    std::uint64_t pulled = 0;
    while (stream->next().has_value()) ++pulled;
    EXPECT_EQ(pulled, total);
  }
  // Lazy path (gaussian overrides build_stream) is reusable too.
  const auto lazy = lib.make_stream_factory("gaussian:n=8");
  EXPECT_EQ(lazy()->total_tasks(), lazy()->total_tasks());
}

TEST(WorkloadLibraryTest, StreamFactoryValidatesOptionsEagerly) {
  const auto& lib = WorkloadLibrary::builtins();
  EXPECT_THROW((void)lib.make_stream_factory("gaussian:rows=4"),
               std::invalid_argument);
}

// --- Factorization DAGs -------------------------------------------------------

TEST(Factorization, TaskCountFormulas) {
  // t=2: [POTRF + 1 TRSM + 1 SYRK] + [POTRF] = 4; LU: 1+2+1 + 1 = 5.
  EXPECT_EQ(workloads::cholesky_task_count(2), 4u);
  EXPECT_EQ(workloads::lu_task_count(2), 5u);
  // t=4 Cholesky: k=0: 1+3+3+3; k=1: 1+2+2+1; k=2: 1+1+1; k=3: 1 -> 20.
  EXPECT_EQ(workloads::cholesky_task_count(4), 20u);
  // t=4 LU: k=0: 1+6+9; k=1: 1+4+4; k=2: 1+2+1; k=3: 1 -> 30.
  EXPECT_EQ(workloads::lu_task_count(4), 30u);
}

TEST(Factorization, TracesMatchCountAndAreDeterministic) {
  workloads::FactorizationConfig cfg;
  cfg.tiles = 6;
  cfg.tile_elems = 16;
  const auto a = workloads::make_cholesky_trace(cfg);
  EXPECT_EQ(a->size(), workloads::cholesky_task_count(6));
  EXPECT_EQ(*a, *workloads::make_cholesky_trace(cfg));
  const auto lu = workloads::make_lu_trace(cfg);
  EXPECT_EQ(lu->size(), workloads::lu_task_count(6));
  EXPECT_EQ(*lu, *workloads::make_lu_trace(cfg));
}

TEST(Factorization, CholeskyStructure) {
  workloads::FactorizationConfig cfg;
  cfg.tiles = 4;
  cfg.tile_elems = 8;
  const auto tasks = workloads::make_cholesky_trace(cfg);

  // First task is the step-0 POTRF on the top-left diagonal tile.
  ASSERT_FALSE(tasks->empty());
  EXPECT_EQ(tasks->front().fn, workloads::kFnPotrf);
  ASSERT_EQ(tasks->front().params.size(), 1u);
  EXPECT_EQ(tasks->front().params[0].mode, core::AccessMode::kInOut);
  EXPECT_EQ(tasks->front().params[0].addr, cfg.tile_addr(0, 0));
  // Last task is the final POTRF on the bottom-right tile.
  EXPECT_EQ(tasks->back().fn, workloads::kFnPotrf);
  EXPECT_EQ(tasks->back().params[0].addr, cfg.tile_addr(3, 3));

  // Every GEMM has exactly two in-tiles and one inout tile; serials are
  // the submission order; no descriptor duplicates a base address.
  std::uint64_t expected_serial = 0;
  for (const auto& t : *tasks) {
    EXPECT_EQ(t.serial, expected_serial++);
    EXPECT_GT(t.exec_time, 0);
    if (t.fn == workloads::kFnGemm) {
      ASSERT_EQ(t.params.size(), 3u);
      EXPECT_EQ(t.params[0].mode, core::AccessMode::kIn);
      EXPECT_EQ(t.params[1].mode, core::AccessMode::kIn);
      EXPECT_EQ(t.params[2].mode, core::AccessMode::kInOut);
    }
    std::set<core::Addr> bases;
    for (const auto& p : t.params) {
      EXPECT_TRUE(bases.insert(p.addr).second)
          << "duplicate base in task " << t.serial;
      EXPECT_EQ(p.size, cfg.tile_bytes());
    }
  }
}

TEST(Factorization, GemmOutweighsPotrf) {
  workloads::FactorizationConfig cfg;
  cfg.tiles = 3;
  cfg.tile_elems = 48;  // divisible by 3: b^3/3 FLOPs stay integral
  const auto tasks = workloads::make_cholesky_trace(cfg);
  sim::Time potrf = 0;
  sim::Time gemm = 0;
  for (const auto& t : *tasks) {
    if (t.fn == workloads::kFnPotrf) potrf = t.exec_time;
    if (t.fn == workloads::kFnGemm) gemm = t.exec_time;
  }
  ASSERT_GT(potrf, 0);
  ASSERT_GT(gemm, 0);
  // GEMM does 2 b^3 FLOPs vs POTRF's b^3/3.
  EXPECT_EQ(gemm, 6 * potrf);
}

TEST(Factorization, ValidatesConfig) {
  workloads::FactorizationConfig cfg;
  cfg.tiles = 1;
  EXPECT_THROW((void)workloads::make_cholesky_trace(cfg),
               std::invalid_argument);
  cfg.tiles = 4;
  cfg.gflops_per_core = 0.0;
  EXPECT_THROW((void)workloads::make_lu_trace(cfg), std::invalid_argument);
  cfg.gflops_per_core = 2.0;
  cfg.tile_stride = 1;  // smaller than a tile: aliasing
  EXPECT_THROW((void)workloads::make_cholesky_trace(cfg),
               std::invalid_argument);
}

// --- Spatial decomposition ----------------------------------------------------

TEST(Spatial, TaskCountMatchesOccupancy) {
  workloads::SpatialConfig cfg;
  cfg.cells_x = 12;
  cfg.cells_y = 10;
  cfg.steps = 3;
  const auto occupied = workloads::spatial_occupied_cells(cfg);
  EXPECT_GT(occupied, 0u);
  EXPECT_LT(occupied, 120u);
  const auto tasks = workloads::make_spatial_trace(cfg);
  EXPECT_EQ(tasks->size(), occupied * cfg.steps);
  EXPECT_EQ(tasks->size(), workloads::spatial_task_count(cfg));
}

TEST(Spatial, FillExtremes) {
  workloads::SpatialConfig cfg;
  cfg.fill = 0.0;
  EXPECT_EQ(workloads::spatial_occupied_cells(cfg), 0u);
  cfg.fill = 1.0;
  EXPECT_EQ(workloads::spatial_occupied_cells(cfg),
            static_cast<std::uint64_t>(cfg.cells_x) * cfg.cells_y);
}

TEST(Spatial, IrregularDegreeAndDeterminism) {
  workloads::SpatialConfig cfg;
  cfg.fill = 0.5;
  const auto tasks = workloads::make_spatial_trace(cfg);
  EXPECT_EQ(*tasks, *workloads::make_spatial_trace(cfg));

  // Irregular occupancy must yield varying parameter counts (1 inout +
  // 0..8 neighbour reads).
  std::set<std::size_t> degrees;
  for (const auto& t : *tasks) {
    ASSERT_GE(t.params.size(), 1u);
    ASSERT_LE(t.params.size(), 9u);
    EXPECT_EQ(t.params.back().mode, core::AccessMode::kInOut);
    degrees.insert(t.params.size());
  }
  EXPECT_GT(degrees.size(), 2u) << "degree distribution suspiciously flat";
}

TEST(Spatial, HaloKnobControlsPartialOverlaps) {
  workloads::SpatialConfig aligned;
  const auto aligned_summary =
      trace::summarize(*workloads::make_spatial_trace(aligned));
  EXPECT_EQ(aligned_summary.partially_overlapping_bases, 0u);

  workloads::SpatialConfig halo = aligned;
  halo.halo_bytes = 64;
  const auto halo_summary =
      trace::summarize(*workloads::make_spatial_trace(halo));
  EXPECT_GT(halo_summary.partially_overlapping_bases, 0u);
}

TEST(Spatial, ValidatesConfig) {
  workloads::SpatialConfig cfg;
  cfg.halo_bytes = cfg.cell_bytes;
  EXPECT_THROW((void)workloads::make_spatial_trace(cfg),
               std::invalid_argument);
  cfg = {};
  cfg.fill = 1.5;
  EXPECT_THROW((void)workloads::spatial_occupied_cells(cfg),
               std::invalid_argument);
}

// --- End-to-end: the engines complete the application DAGs --------------------

TEST(ApplicationWorkloads, EnginesCompleteThem) {
  const auto& lib = WorkloadLibrary::builtins();
  const auto& registry = engine::EngineRegistry::builtins();
  engine::EngineParams params;
  params.num_workers = 8;
  for (const char* spec :
       {"tiled-cholesky:tiles=4,tile-elems=16", "tiled-lu:tiles=4,tile-elems=16",
        "spatial:cells-x=6,cells-y=6,steps=2"}) {
    for (const char* engine_name : {"nexus++", "software-rts"}) {
      const auto eng = registry.make(engine_name, params);
      const auto report = eng->run(lib.make_stream(spec));
      EXPECT_FALSE(report.deadlocked)
          << spec << " on " << engine_name << ": " << report.diagnosis;
      EXPECT_EQ(report.tasks_completed, report.tasks_expected)
          << spec << " on " << engine_name;
      EXPECT_GT(report.makespan, 0) << spec << " on " << engine_name;
    }
  }
}

}  // namespace
}  // namespace nexuspp
