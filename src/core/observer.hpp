#pragma once
// Execution observation hooks for runtimes that *actually run* tasks (the
// exec/ threaded backend) rather than simulate them.
//
// Simulated engines are deterministic functions of (config, stream), so
// their reports are self-validating against replay. A real concurrent
// executor is not: its completion order differs run to run, and the
// correctness claim shifts from "bit-identical report" to "every task's
// dependencies completed before it ran". The observer is how a harness
// captures the evidence for that claim without the executor knowing about
// tests: the executor emits submission/start/completion events, a recorder
// keeps the completion order, and GraphOracle::validate_completion_order
// checks it against the unbounded reference dependency graph.
//
// Contract required from emitters (and honored by exec::ThreadedExecutor):
//   - on_submitted fires in stream (serial) order, before the task can run;
//   - on_started fires before the task's kernel begins;
//   - on_completed fires after the kernel finishes but *before* the task's
//     accesses are released — so a dependant's completion event can never
//     be recorded ahead of its predecessor's.
// Callbacks may fire concurrently from many workers; implementations must
// be thread-safe.

#include <cstdint>
#include <mutex>
#include <vector>

namespace nexuspp::core {

class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;

  /// Task entered the runtime (stream order; called from the submit path).
  virtual void on_submitted(std::uint64_t serial) { (void)serial; }
  /// A worker is about to run the task's kernel.
  virtual void on_started(std::uint64_t serial, std::uint32_t worker) {
    (void)serial;
    (void)worker;
  }
  /// The task's kernel finished; its accesses are not yet released.
  virtual void on_completed(std::uint64_t serial, std::uint32_t worker) {
    (void)serial;
    (void)worker;
  }
};

/// Thread-safe observer that records the global completion order — the
/// input GraphOracle::validate_completion_order checks.
class CompletionRecorder final : public ExecutionObserver {
 public:
  void on_completed(std::uint64_t serial, std::uint32_t worker) override {
    (void)worker;
    const std::lock_guard<std::mutex> lock(mu_);
    order_.push_back(serial);
  }

  /// Snapshot of the completion order so far (serials, earliest first).
  [[nodiscard]] std::vector<std::uint64_t> order() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return order_;
  }

  void reset() {
    const std::lock_guard<std::mutex> lock(mu_);
    order_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::uint64_t> order_;
};

}  // namespace nexuspp::core
