#include "util/flags.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace nexuspp::util {

Flags::Flags(int argc, const char* const* argv,
             std::unordered_set<std::string> known_bools)
    : known_bools_(std::move(known_bools)) {
  bool flags_done = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (flags_done || arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    if (arg == "--") {  // terminator: the rest is positional verbatim
      flags_done = true;
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
      continue;
    }
    // `--name value` unless the next token is itself a flag or `name` is a
    // known boolean (which would otherwise swallow a positional argument).
    if (!known_bools_.count(arg) && i + 1 < argc &&
        std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_.emplace_back(std::move(arg), argv[i + 1]);
      ++i;
    } else {
      values_.emplace_back(std::move(arg), "1");
    }
  }
}

std::string Flags::env_name(const std::string& name) {
  std::string out = "NEXUSPP_";
  for (char ch : name) {
    out += (ch == '-') ? '_' : static_cast<char>(std::toupper(
                                   static_cast<unsigned char>(ch)));
  }
  return out;
}

std::optional<std::string> Flags::lookup(const std::string& name) const {
  // Last occurrence on the command line wins.
  for (auto it = values_.rbegin(); it != values_.rend(); ++it) {
    if (it->first == name) return it->second;
  }
  if (const char* env = std::getenv(env_name(name).c_str())) {
    return std::string(env);
  }
  return std::nullopt;
}

bool Flags::has(const std::string& name) const {
  const auto v = lookup(name);
  return v.has_value() && !v->empty() && *v != "0";
}

std::optional<std::string> Flags::get(const std::string& name) const {
  return lookup(name);
}

std::string Flags::get_or(const std::string& name,
                          const std::string& fallback) const {
  return lookup(name).value_or(fallback);
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto v = lookup(name);
  if (!v) return fallback;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    return fallback;
  }
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto v = lookup(name);
  if (!v) return fallback;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    return fallback;
  }
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto v = lookup(name);
  if (!v) return fallback;
  return !v->empty() && *v != "0" && *v != "false" && *v != "no";
}

}  // namespace nexuspp::util
