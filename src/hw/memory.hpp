#pragma once
// Off-chip memory model (Table IV of the paper).
//
// Timing: 12 ns per 128-byte chunk. Contention: the memory has 32 banks
// with one read/write port each, so "no more than 32 tasks can access the
// memory at a given time" — modeled by default as a counting semaphore of
// one permit per bank held for the whole transfer (the paper's coarse
// rule). A finer-grained banked mode (chunks striped over per-bank queues)
// is available as an extension for sensitivity studies.

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/co.hpp"
#include "sim/semaphore.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace nexuspp::hw {

enum class ContentionModel : std::uint8_t {
  kNone,    ///< contention-free: transfers only pay raw latency
  kPorts,   ///< paper default: at most `banks` concurrent transfers
  kBanked,  ///< extension: chunks striped over per-bank serial queues
};

struct MemoryConfig {
  std::uint32_t banks = 32;
  std::uint32_t chunk_bytes = 128;
  sim::Time chunk_latency = sim::ns(12);
  ContentionModel contention = ContentionModel::kPorts;

  void validate() const;
};

class Memory {
 public:
  Memory(sim::Simulator& sim, MemoryConfig config);

  /// Raw (contention-free) duration of a `bytes`-sized transfer.
  [[nodiscard]] sim::Time transfer_time(std::uint64_t bytes) const noexcept;

  /// Performs a transfer starting at `addr` (the address only matters for
  /// bank striping in kBanked mode). Completes after the modeled latency,
  /// including any waiting for a free port/bank.
  [[nodiscard]] sim::Co<void> transfer(std::uint64_t addr,
                                       std::uint64_t bytes);

  struct Stats {
    std::uint64_t transfers = 0;
    std::uint64_t bytes = 0;
    sim::Time busy_time = 0;        ///< summed raw transfer time
    sim::Time contention_wait = 0;  ///< time spent waiting for ports/banks
    std::int64_t max_concurrency = 0;

    [[nodiscard]] friend bool operator==(const Stats&, const Stats&) = default;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const MemoryConfig& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] sim::Co<void> transfer_ports(std::uint64_t bytes);
  [[nodiscard]] sim::Co<void> transfer_banked(std::uint64_t addr,
                                              std::uint64_t bytes);

  sim::Simulator* sim_;
  MemoryConfig config_;
  std::unique_ptr<sim::Semaphore> ports_;  ///< kPorts mode
  std::vector<std::unique_ptr<sim::Semaphore>> banks_;  ///< kBanked mode
  Stats stats_;
  std::int64_t in_flight_ = 0;
};

}  // namespace nexuspp::hw
