#include "bench_common.hpp"

#include <cstdlib>

namespace nexuspp::bench {

bool full_mode() {
  const char* env = std::getenv("NEXUSPP_BENCH_FULL");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::vector<SeriesPoint> speedup_series(
    nexus::NexusConfig base, const StreamFactory& factory,
    const std::vector<std::uint32_t>& cores) {
  std::vector<SeriesPoint> out;
  out.reserve(cores.size());
  for (const std::uint32_t n : cores) {
    nexus::NexusConfig cfg = base;
    cfg.num_workers = n;
    SeriesPoint point;
    point.cores = n;
    point.report = nexus::run_system(cfg, factory());
    point.speedup = out.empty() ? 1.0 : point.report.speedup_vs(
                                            out.front().report);
    out.push_back(std::move(point));
  }
  return out;
}

std::vector<std::uint32_t> cores_to_256() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256};
}

std::vector<std::uint32_t> cores_to_64() { return {1, 2, 4, 8, 16, 32, 64}; }

}  // namespace nexuspp::bench
