#pragma once
// Shared helpers for the figure/table reproduction harnesses.
//
// Every bench binary runs stand-alone with no arguments (the benchmark
// sweep is `for b in build/bench/*; do $b; done`); heavyweight sweeps are
// gated behind NEXUSPP_BENCH_FULL=1 (or --bench-full).
//
// All benches are declarative sweep specs over the unified engine layer:
// they describe a config grid (engine names x workloads x EngineParams),
// run it through the multi-threaded engine::SweepDriver, and emit results
// through the shared RunReport table/CSV path. Environment knobs:
//
//   NEXUSPP_SWEEP_THREADS=N  sweep worker threads (default 4)
//   NEXUSPP_BENCH_CSV=1|path also emit CSV (stdout or file)
//   NEXUSPP_BENCH_JSON=1|path also emit JSON (stdout or file)

#include <cstdint>
#include <string>
#include <vector>

#include "engine/sweep.hpp"

namespace nexuspp::bench {

using engine::StreamFactory;

/// True when the full (slow) sweep was requested via NEXUSPP_BENCH_FULL=1.
[[nodiscard]] bool full_mode();

/// Sweep options from the environment (NEXUSPP_SWEEP_THREADS, default 4).
[[nodiscard]] engine::SweepOptions sweep_options();

/// Runs `spec` on the built-in registry with sweep_options() and prints a
/// one-line telemetry summary (points, threads, wall seconds).
[[nodiscard]] std::vector<engine::SweepResult> run_sweep(
    const engine::SweepSpec& spec);

/// Prints the standard results table (plus extra columns), then CSV/JSON
/// when the corresponding environment knob is set.
void emit(const std::string& title,
          const std::vector<engine::SweepResult>& results,
          const std::vector<engine::SweepDriver::Column>& extra = {});

/// Shared output path for non-simulation tables (e.g. closed-form checks):
/// prints the table and honors NEXUSPP_BENCH_CSV like emit().
void emit_table(const util::Table& table);

/// Human commentary ("Expected shape: ..."). Goes to stdout normally, to
/// stderr when a machine format targets stdout, so `bench > data.csv`
/// stays parseable end to end.
void note(const std::string& text);

/// Standard core-count sweeps.
[[nodiscard]] std::vector<std::uint32_t> cores_to_256();
[[nodiscard]] std::vector<std::uint32_t> cores_to_64();

/// A params axis over worker counts (points render as "w=<n>"); the first
/// entry becomes the series baseline under SweepSpec::grid.
[[nodiscard]] std::vector<engine::EngineParams> worker_axis(
    const std::vector<std::uint32_t>& cores, engine::EngineParams base = {});

struct SeriesPoint {
  std::uint32_t cores = 0;
  engine::RunReport report;
  double speedup = 0.0;  ///< vs the first (1-core) run of the series
};

/// Core-count speedup series for one engine over fresh streams from
/// `factory`, executed in parallel through the SweepDriver. Speedups are
/// relative to the first entry (callers pass 1 as the first core count,
/// matching the paper's "speedup against the single core experiment").
[[nodiscard]] std::vector<SeriesPoint> speedup_series(
    const std::string& engine_name, const StreamFactory& factory,
    const std::vector<std::uint32_t>& cores,
    engine::EngineParams base = {});

}  // namespace nexuspp::bench
