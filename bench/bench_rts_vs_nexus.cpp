// Motivation experiment (paper Section I, after [10]): the software StarSs
// runtime is a scalability bottleneck that hardware task management
// removes.
//
// Both systems run the same H.264 wavefront workload; each reports speedup
// against its own single-core run. The software RTS serializes task
// creation, dependency resolution and completion handling on the master
// core (~3 us per 3-parameter task), so it saturates at a handful of
// workers; Nexus++ resolves dependencies in 2 ns table accesses and keeps
// scaling. The Nexus paper measured a 4.3x advantage at 16 cores for this
// workload class.

#include <iostream>

#include "bench_common.hpp"
#include "rts/software_rts.hpp"
#include "workloads/grid.hpp"

namespace nexuspp {
namespace {

int run() {
  workloads::GridConfig grid;  // wavefront H.264, 8160 tasks
  const auto tasks = make_grid_trace(grid);
  const auto factory = [&tasks] {
    return workloads::make_grid_stream(tasks);
  };

  const std::vector<std::uint32_t> cores{1, 2, 4, 8, 16, 32};

  std::vector<rts::SoftwareRtsReport> sw;
  for (const auto n : cores) {
    rts::SoftwareRtsConfig cfg;
    cfg.num_workers = n;
    sw.push_back(rts::run_software_rts(cfg, factory()));
  }
  const auto nexus_series =
      bench::speedup_series(nexus::NexusConfig{}, factory, cores);

  util::Table table(
      "Software StarSs RTS vs Nexus++ (H.264 wavefront, speedup vs own "
      "1-core run)");
  table.header({"cores", "software RTS", "RTS master busy", "Nexus++",
                "advantage"});
  for (std::size_t i = 0; i < cores.size(); ++i) {
    const double sw_speedup =
        i == 0 ? 1.0 : sw[i].speedup_vs(sw.front());
    table.row({std::to_string(cores[i]), util::fmt_x(sw_speedup),
               util::fmt_f(100.0 * sw[i].master_utilization, 1) + "%",
               util::fmt_x(nexus_series[i].speedup),
               util::fmt_x(nexus_series[i].speedup / sw_speedup)});
  }
  std::cout << table.to_string() << "\n";
  std::cout << "Expected shape: the software RTS saturates once its "
               "master core is ~100% busy; Nexus++ keeps scaling (the "
               "original Nexus measured a 4.3x advantage at 16 cores on "
               "this workload class).\n";
  return 0;
}

}  // namespace
}  // namespace nexuspp

int main() { return nexuspp::run(); }
