// Fixture: a lock_shard() call while another shard lock's scope is still
// open trips nested-shard-lock, as does a raw mu_.lock() bypassing the
// counting wrapper. Sequential (non-overlapping) scopes stay silent.
#include <mutex>

namespace fixture {

struct Shard {
  std::mutex mu_;

  std::unique_lock<std::mutex> lock_shard() {
    return std::unique_lock<std::mutex>(mu_);
  }

  void nested() {
    const auto outer = lock_shard();
    const auto inner = lock_shard();  // violation: second shard lock held
  }

  void raw_bypass() {
    mu_.lock();  // violation: raw lock bypasses the counting wrapper
    mu_.unlock();  // violation: raw unlock
  }

  void sequential() {
    {
      const auto first = lock_shard();
    }
    const auto second = lock_shard();  // prior scope closed: no violation
  }
};

}  // namespace fixture
