#include "core/types.hpp"

#include <algorithm>
#include <stdexcept>

namespace nexuspp::core {

MatchMode match_mode_from_string(const std::string& name) {
  if (name == "base-addr" || name == "base") return MatchMode::kBaseAddr;
  if (name == "range") return MatchMode::kRange;
  throw std::invalid_argument("unknown match mode '" + name +
                              "' (expected base-addr or range)");
}

std::string TaskDescriptor::validate() const {
  std::vector<Addr> addrs;
  addrs.reserve(params.size());
  for (const auto& p : params) {
    if (p.size == 0) {
      return "parameter with zero size at address " + std::to_string(p.addr);
    }
    addrs.push_back(p.addr);
  }
  std::sort(addrs.begin(), addrs.end());
  const auto dup = std::adjacent_find(addrs.begin(), addrs.end());
  if (dup != addrs.end()) {
    return "duplicate parameter base address " + std::to_string(*dup) +
           " (use a single inout parameter instead)";
  }
  return {};
}

}  // namespace nexuspp::core
