#pragma once
// BankedTable: N independent core::DependenceTable banks behind one
// home-region address partition (bank::BankPartition).
//
// The total entry budget is split evenly: each bank owns
// ceil(capacity / banks) slots and its own hash buckets, free list and
// (range mode) interval index. Banks never share state, which is what lets
// the timed layer resolve parameters on different banks in the same cycle —
// and what makes *load imbalance* a real failure mode: one hot bank can
// run out of slots while its siblings sit empty. The per-bank statistics
// exposed here (live highwater, insert failures) feed the imbalance
// telemetry in the bank-scaling reports.
//
// With banks == 1 the single bank is configured exactly like the monolithic
// table (same capacity, same kick-off bound, same match mode), so every
// lookup walks identical hash chains and returns identical Cost receipts —
// the base of the `nexus-banked`-equals-`nexus++` differential guarantee.

#include <cstdint>
#include <vector>

#include "bank/partition.hpp"
#include "core/dependence_table.hpp"

namespace nexuspp::bank {

struct BankedTableConfig {
  /// Aggregate table shape; `table.capacity` is the *total* entry budget
  /// split across banks.
  core::DependenceTableConfig table{};
  BankPartition partition{};

  void validate() const;

  /// Entry slots per bank: ceil(capacity / banks).
  [[nodiscard]] std::uint32_t per_bank_capacity() const noexcept {
    return (table.capacity + partition.banks - 1) / partition.banks;
  }
};

class BankedTable {
 public:
  explicit BankedTable(BankedTableConfig config);

  [[nodiscard]] std::uint32_t bank_count() const noexcept {
    return config_.partition.banks;
  }
  [[nodiscard]] const BankPartition& partition() const noexcept {
    return config_.partition;
  }
  [[nodiscard]] core::MatchMode match_mode() const noexcept {
    return config_.table.match_mode;
  }

  [[nodiscard]] core::DependenceTable& bank(std::uint32_t b) {
    return banks_.at(b);
  }
  [[nodiscard]] const core::DependenceTable& bank(std::uint32_t b) const {
    return banks_.at(b);
  }

  /// Live entries summed over all banks.
  [[nodiscard]] std::uint32_t live_slot_count() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return live_slot_count() == 0; }

  /// Element-wise sum (counters) / max (extrema) of the per-bank stats.
  [[nodiscard]] core::DependenceTable::Stats aggregated_stats() const;

  /// Max over banks of the per-bank live-slot highwater mark.
  [[nodiscard]] std::uint32_t peak_bank_live() const noexcept;

  /// Occupancy imbalance: max over banks of the live highwater divided by
  /// the mean over banks (1.0 = perfectly even; 0 when nothing was ever
  /// stored). The bank-scaling bench reports this next to conflict stalls.
  [[nodiscard]] double occupancy_imbalance() const noexcept;

 private:
  BankedTableConfig config_;
  std::vector<core::DependenceTable> banks_;
};

}  // namespace nexuspp::bank
