// Structural oracle for the task-bench pattern family: an independent
// reimplementation of every dependence table row from pattern.hpp /
// docs/WORKLOADS.md, diffed exhaustively against the accesses the
// generator actually emits over a grid of widths, steps, radii, fractions
// and seeds. Plus spec-string wiring (unknown kinds/keys/values rejected),
// determinism under seed, and the double-buffered address map itself.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "workloads/library.hpp"
#include "workloads/pattern.hpp"

namespace nexuspp {
namespace {

using workloads::PatternConfig;
using workloads::PatternKind;

// --- Independent reference model ----------------------------------------
// Deliberately written set-first (no clamp helper, no sort/unique pass) so
// it shares no code shape with the generator it checks.

std::uint32_t ref_stages(std::uint32_t w) {
  std::uint32_t s = 0;
  while ((1ull << s) < w) ++s;
  return s;
}

double ref_draw(std::uint64_t seed, std::uint32_t t, std::uint32_t p,
                std::uint32_t q) {
  constexpr std::uint64_t kPhi = 0x9E3779B97F4A7C15ull;
  std::uint64_t h = seed;
  h = util::SplitMix64(h ^ (kPhi * (std::uint64_t{t} + 1))).next();
  h = util::SplitMix64(h ^ (kPhi * (std::uint64_t{p} + 1))).next();
  h = util::SplitMix64(h ^ (kPhi * (std::uint64_t{q} + 1))).next();
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// The normative table of pattern.hpp, as sets over [0, W).
std::set<std::uint32_t> ref_deps(const PatternConfig& cfg, std::uint32_t t,
                                 std::uint32_t p) {
  std::set<std::uint32_t> deps;
  if (t == 0) return deps;
  const std::uint32_t w = cfg.width;
  switch (cfg.kind) {
    case PatternKind::kStencil1D:
      if (p > 0) deps.insert(p - 1);
      deps.insert(p);
      if (p + 1 < w) deps.insert(p + 1);
      break;
    case PatternKind::kStencil1DPeriodic:
      deps.insert((p + w - 1) % w);
      deps.insert(p);
      deps.insert((p + 1) % w);
      break;
    case PatternKind::kTree:
      deps.insert(p / 2);
      break;
    case PatternKind::kFft: {
      deps.insert(p);
      if (w > 1) {
        const std::uint32_t partner =
            p ^ (1u << ((t - 1) % ref_stages(w)));
        if (partner < w) deps.insert(partner);
      }
      break;
    }
    case PatternKind::kDom:
      if (p > 0) deps.insert(p - 1);
      deps.insert(p);
      break;
    case PatternKind::kAllToAll:
      for (std::uint32_t q = 0; q < w; ++q) deps.insert(q);
      break;
    case PatternKind::kNearest:
      for (std::uint32_t q = 0; q < w; ++q) {
        if (q + cfg.radius >= p && q <= p + cfg.radius) deps.insert(q);
      }
      break;
    case PatternKind::kRandomNearest:
      for (std::uint32_t q = 0; q < w; ++q) {
        if (q + cfg.radius < p || q > p + cfg.radius) continue;
        if (q == p || ref_draw(cfg.seed, t, p, q) < cfg.fraction) {
          deps.insert(q);
        }
      }
      break;
    case PatternKind::kSpread: {
      const std::uint32_t arms =
          cfg.radius < 1 ? 1 : (cfg.radius < w ? cfg.radius : w);
      const std::uint32_t stride = (w + arms - 1) / arms;
      for (std::uint32_t i = 0; i < arms; ++i) {
        deps.insert(static_cast<std::uint32_t>(
            (std::uint64_t{p} + std::uint64_t{i} * stride + (t - 1)) % w));
      }
      break;
    }
  }
  return deps;
}

/// Decodes an emitted trace back into per-task (reads, write) point sets
/// via the documented address map and diffs every task against ref_deps.
void check_trace_against_reference(const PatternConfig& cfg) {
  const auto tasks = workloads::make_pattern_trace(cfg);
  SCOPED_TRACE(std::string("kind=") + workloads::to_string(cfg.kind) +
               " w=" + std::to_string(cfg.width) +
               " steps=" + std::to_string(cfg.steps) +
               " radius=" + std::to_string(cfg.radius) +
               " fraction=" + std::to_string(cfg.fraction) +
               " seed=" + std::to_string(cfg.seed));
  ASSERT_EQ(tasks->size(), workloads::pattern_task_count(cfg));

  auto decode_point = [&](core::Addr addr, std::uint32_t parity) {
    const auto offset = (addr - cfg.base) / cfg.point_bytes;
    EXPECT_EQ((addr - cfg.base) % cfg.point_bytes, 0u);
    EXPECT_GE(offset, core::Addr{parity} * cfg.width);
    return static_cast<std::uint32_t>(offset - core::Addr{parity} * cfg.width);
  };

  std::uint64_t serial = 0;
  for (std::uint32_t t = 0; t < cfg.steps; ++t) {
    const std::uint32_t write_parity = t % 2;
    const std::uint32_t read_parity = 1 - write_parity;
    for (std::uint32_t p = 0; p < cfg.width; ++p, ++serial) {
      const auto& rec = (*tasks)[serial];
      ASSERT_EQ(rec.serial, serial);  // timestep-major submission order

      // Last param is the task's own output region at this parity; the
      // rest are reads of the previous timestep's parity.
      ASSERT_FALSE(rec.params.empty());
      const auto& w = rec.params.back();
      EXPECT_EQ(w.mode, core::AccessMode::kInOut);
      EXPECT_EQ(w.size, cfg.point_bytes);
      EXPECT_EQ(decode_point(w.addr, write_parity), p);

      std::set<std::uint32_t> reads;
      for (std::size_t i = 0; i + 1 < rec.params.size(); ++i) {
        EXPECT_EQ(rec.params[i].mode, core::AccessMode::kIn);
        EXPECT_EQ(rec.params[i].size, cfg.point_bytes);
        reads.insert(decode_point(rec.params[i].addr, read_parity));
      }
      // Sorted ascending and deduplicated: set size == emitted count.
      EXPECT_EQ(reads.size(), rec.params.size() - 1);
      for (std::size_t i = 0; i + 2 < rec.params.size(); ++i) {
        EXPECT_LT(rec.params[i].addr, rec.params[i + 1].addr);
      }

      const auto expected = ref_deps(cfg, t, p);
      EXPECT_EQ(reads, expected)
          << "deps mismatch at t=" << t << " p=" << p;
      EXPECT_EQ(rec.read_bytes,
                std::uint64_t{expected.size()} * cfg.point_bytes);
      EXPECT_EQ(rec.write_bytes, cfg.point_bytes);
    }
  }
}

// --- Exhaustive differential sweep --------------------------------------

TEST(PatternOracle, AllKindsMatchReferenceAcrossWidths) {
  for (const auto kind : workloads::all_pattern_kinds()) {
    for (const std::uint32_t width : {1u, 2u, 3u, 5u, 8u, 16u}) {
      PatternConfig cfg;
      cfg.kind = kind;
      cfg.width = width;
      cfg.steps = 6;
      check_trace_against_reference(cfg);
    }
  }
}

TEST(PatternOracle, WindowPatternsMatchReferenceAcrossRadii) {
  for (const auto kind : {PatternKind::kNearest, PatternKind::kRandomNearest,
                          PatternKind::kSpread}) {
    for (const std::uint32_t radius : {0u, 1u, 3u, 7u, 32u}) {
      PatternConfig cfg;
      cfg.kind = kind;
      cfg.width = 9;
      cfg.steps = 5;
      cfg.radius = radius;
      check_trace_against_reference(cfg);
    }
  }
}

TEST(PatternOracle, RandomNearestMatchesReferenceAcrossFractionsAndSeeds) {
  for (const double fraction : {0.0, 0.3, 1.0}) {
    for (const std::uint64_t seed : {1ull, 42ull, 0xFEEDull}) {
      PatternConfig cfg;
      cfg.kind = PatternKind::kRandomNearest;
      cfg.width = 11;
      cfg.steps = 6;
      cfg.radius = 3;
      cfg.fraction = fraction;
      cfg.seed = seed;
      check_trace_against_reference(cfg);
    }
  }
}

// --- Pointwise edge semantics -------------------------------------------

TEST(PatternDeps, TimestepZeroNeverReads) {
  for (const auto kind : workloads::all_pattern_kinds()) {
    PatternConfig cfg;
    cfg.kind = kind;
    EXPECT_TRUE(workloads::pattern_deps(cfg, 0, 3).empty())
        << workloads::to_string(kind);
  }
}

TEST(PatternDeps, FftDegeneratesToSelfAtWidthOne) {
  PatternConfig cfg;
  cfg.kind = PatternKind::kFft;
  cfg.width = 1;
  EXPECT_EQ(workloads::pattern_deps(cfg, 1, 0),
            std::vector<std::uint32_t>{0u});
}

TEST(PatternDeps, FftStagesRotatePerTimestep) {
  PatternConfig cfg;
  cfg.kind = PatternKind::kFft;
  cfg.width = 8;  // 3 stages: partners XOR 1, 2, 4, then XOR 1 again
  EXPECT_EQ(workloads::pattern_deps(cfg, 1, 0),
            (std::vector<std::uint32_t>{0u, 1u}));
  EXPECT_EQ(workloads::pattern_deps(cfg, 2, 0),
            (std::vector<std::uint32_t>{0u, 2u}));
  EXPECT_EQ(workloads::pattern_deps(cfg, 3, 0),
            (std::vector<std::uint32_t>{0u, 4u}));
  EXPECT_EQ(workloads::pattern_deps(cfg, 4, 0),
            (std::vector<std::uint32_t>{0u, 1u}));
}

TEST(PatternDeps, RandomNearestKeepsSelfEvenAtFractionZero) {
  PatternConfig cfg;
  cfg.kind = PatternKind::kRandomNearest;
  cfg.width = 7;
  cfg.fraction = 0.0;
  for (std::uint32_t p = 0; p < cfg.width; ++p) {
    EXPECT_EQ(workloads::pattern_deps(cfg, 3, p),
              std::vector<std::uint32_t>{p});
  }
}

TEST(PatternDeps, RandomNearestAtFractionOneIsNearest) {
  PatternConfig random_cfg;
  random_cfg.kind = PatternKind::kRandomNearest;
  random_cfg.width = 10;
  random_cfg.radius = 2;
  random_cfg.fraction = 1.0;
  PatternConfig nearest_cfg = random_cfg;
  nearest_cfg.kind = PatternKind::kNearest;
  for (std::uint32_t t = 1; t < 4; ++t) {
    for (std::uint32_t p = 0; p < random_cfg.width; ++p) {
      EXPECT_EQ(workloads::pattern_deps(random_cfg, t, p),
                workloads::pattern_deps(nearest_cfg, t, p));
    }
  }
}

// --- Determinism ---------------------------------------------------------

TEST(PatternDeterminism, IdenticalConfigsProduceIdenticalTraces) {
  for (const auto kind : workloads::all_pattern_kinds()) {
    PatternConfig cfg;
    cfg.kind = kind;
    cfg.width = 8;
    cfg.steps = 5;
    EXPECT_EQ(*workloads::make_pattern_trace(cfg),
              *workloads::make_pattern_trace(cfg))
        << workloads::to_string(kind);
  }
}

TEST(PatternDeterminism, SeedOnlyAffectsRandomNearest) {
  for (const auto kind : workloads::all_pattern_kinds()) {
    PatternConfig a;
    a.kind = kind;
    a.width = 12;
    a.steps = 6;
    a.fraction = 0.5;
    PatternConfig b = a;
    b.seed = a.seed + 1;
    const bool differs =
        *workloads::make_pattern_trace(a) != *workloads::make_pattern_trace(b);
    EXPECT_EQ(differs, kind == PatternKind::kRandomNearest)
        << workloads::to_string(kind);
  }
}

// --- Address map ---------------------------------------------------------

TEST(PatternAddresses, DoubleBufferedRegionsAreDisjointAndContiguous) {
  PatternConfig cfg;
  cfg.width = 5;
  cfg.point_bytes = 32;
  std::set<core::Addr> seen;
  for (std::uint32_t parity = 0; parity < 2; ++parity) {
    for (std::uint32_t p = 0; p < cfg.width; ++p) {
      const auto addr = workloads::pattern_point_addr(cfg, p, parity);
      EXPECT_TRUE(seen.insert(addr).second) << "aliased region";
      EXPECT_EQ(addr, cfg.base +
                          core::Addr{parity * cfg.width + p} * cfg.point_bytes);
    }
  }
}

// --- Config validation and spec-string wiring ----------------------------

TEST(PatternConfigTest, ValidateRejectsDegenerateValues) {
  PatternConfig cfg;
  cfg.width = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.steps = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.point_bytes = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.fraction = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.fraction = -0.1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(PatternKindNames, RoundTripAndRejection) {
  for (const auto kind : workloads::all_pattern_kinds()) {
    EXPECT_EQ(workloads::pattern_kind_from_string(workloads::to_string(kind)),
              kind);
  }
  try {
    (void)workloads::pattern_kind_from_string("butterfly");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error names the accepted kinds.
    EXPECT_NE(std::string(e.what()).find("all-to-all"), std::string::npos)
        << e.what();
  }
}

TEST(PatternLibrarySpec, BuildsEveryKindWithOptions) {
  const auto& lib = workloads::WorkloadLibrary::builtins();
  ASSERT_TRUE(lib.contains("pattern"));
  for (const auto kind : workloads::all_pattern_kinds()) {
    const std::string spec =
        std::string("pattern:kind=") + workloads::to_string(kind) +
        ",width=6,steps=4,radius=1,task-ns=1000,point-bytes=16,seed=7";
    const auto tasks = lib.make_trace(spec);
    EXPECT_EQ(tasks->size(), 24u) << spec;
  }
}

TEST(PatternLibrarySpec, SpecMatchesDirectConfig) {
  const auto& lib = workloads::WorkloadLibrary::builtins();
  PatternConfig cfg;
  cfg.kind = PatternKind::kRandomNearest;
  cfg.width = 9;
  cfg.steps = 5;
  cfg.radius = 3;
  cfg.fraction = 0.25;
  cfg.task_ns = 777;
  cfg.seed = 123;
  cfg.point_bytes = 48;
  const auto via_spec = lib.make_trace(
      "pattern:kind=random-nearest,width=9,steps=5,radius=3,fraction=0.25,"
      "task-ns=777,seed=123,point-bytes=48");
  EXPECT_EQ(*via_spec, *workloads::make_pattern_trace(cfg));
}

TEST(PatternLibrarySpec, RejectsUnknownKeysKindsAndValues) {
  const auto& lib = workloads::WorkloadLibrary::builtins();
  try {
    (void)lib.make_trace("pattern:widht=8");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("widht"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)lib.make_trace("pattern:kind=butterfly"),
               std::invalid_argument);
  EXPECT_THROW((void)lib.make_trace("pattern:fraction=2.0"),
               std::invalid_argument);
  EXPECT_THROW((void)lib.make_trace("pattern:width=0"),
               std::invalid_argument);
}

}  // namespace
}  // namespace nexuspp
