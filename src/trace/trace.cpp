#include "trace/trace.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace nexuspp::trace {

namespace {

bool valid_meta_key(const std::string& key) {
  if (key.empty()) return false;
  for (const char c : key) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') return false;
  }
  return true;
}

}  // namespace

void TraceMeta::set(std::string key, std::string value) {
  if (!valid_meta_key(key)) {
    throw std::invalid_argument("trace meta: key must be a non-empty token "
                                "without whitespace, got '" +
                                key + "'");
  }
  if (value.find('\n') != std::string::npos ||
      value.find('\r') != std::string::npos) {
    throw std::invalid_argument("trace meta: value for '" + key +
                                "' must not contain newlines");
  }
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(std::move(key), std::move(value));
}

std::optional<std::string> TraceMeta::get(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::unique_ptr<VectorStream> make_vector_stream(
    std::vector<TaskRecord> tasks) {
  return std::make_unique<VectorStream>(
      std::make_shared<const std::vector<TaskRecord>>(std::move(tasks)));
}

TraceSummary summarize(const std::vector<TaskRecord>& tasks) {
  TraceSummary s;
  s.tasks = tasks.size();
  if (tasks.empty()) return s;
  double exec = 0.0;
  double rd = 0.0;
  double wr = 0.0;
  double np = 0.0;
  for (const auto& t : tasks) {
    exec += sim::to_ns(t.exec_time);
    rd += static_cast<double>(t.read_bytes);
    wr += static_cast<double>(t.write_bytes);
    np += static_cast<double>(t.params.size());
    s.max_params = std::max(s.max_params, t.params.size());
  }
  const auto n = static_cast<double>(tasks.size());
  s.mean_exec_ns = exec / n;
  s.mean_read_bytes = rd / n;
  s.mean_write_bytes = wr / n;
  s.mean_params = np / n;

  // Overlap census: collapse every access to its base's maximum extent,
  // then sweep the bases in order — a base partially overlaps when its
  // range intersects a neighbouring base's range. One pass over the
  // sorted map suffices because intersection of intervals with distinct
  // bases is always visible between base-order neighbours.
  std::map<core::Addr, std::uint32_t> extent;
  for (const auto& t : tasks) {
    for (const auto& p : t.params) {
      auto [it, fresh] = extent.try_emplace(p.addr, p.size);
      if (!fresh) it->second = std::max(it->second, p.size);
    }
  }
  s.distinct_bases = extent.size();
  std::vector<std::pair<core::Addr, std::uint32_t>> bases(extent.begin(),
                                                          extent.end());
  std::vector<bool> overlapped(bases.size(), false);
  core::Addr furthest_end = 0;  // furthest reach of any earlier base
  for (std::size_t i = 0; i < bases.size(); ++i) {
    const auto [base, size] = bases[i];
    if (i > 0 && base < furthest_end) overlapped[i] = true;
    // A base overlaps its successor iff the successor starts inside it;
    // together with the prefix-reach check this marks both ends of every
    // intersecting pair.
    if (i + 1 < bases.size() && bases[i + 1].first < base + size) {
      overlapped[i] = true;
    }
    furthest_end = std::max(furthest_end, base + size);
  }
  for (const bool o : overlapped) s.partially_overlapping_bases += o;
  return s;
}

}  // namespace nexuspp::trace
