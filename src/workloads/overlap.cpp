#include "workloads/overlap.hpp"

#include <stdexcept>

namespace nexuspp::workloads {

namespace {

/// Identical draws for the same (seed, serial) regardless of workload
/// shape, matching the keying convention of the grid generator.
void draw_timing(const trace::TimingModel& timing, std::uint64_t seed,
                 trace::TaskRecord& rec) {
  util::Rng rng(util::SplitMix64(seed ^ (rec.serial * 0x9E37)).next());
  rec.exec_time = timing.draw_exec(rng);
  const auto mem = timing.draw_mem(rng);
  rec.read_bytes = mem.read_bytes;
  rec.write_bytes = mem.write_bytes;
}

}  // namespace

void HaloStencilConfig::validate() const {
  if (blocks == 0 || steps == 0) {
    throw std::invalid_argument("halo stencil: empty workload");
  }
  if (block_bytes == 0) {
    throw std::invalid_argument("halo stencil: zero block size");
  }
  if (halo_bytes == 0 || halo_bytes >= block_bytes) {
    throw std::invalid_argument(
        "halo stencil: halo must be non-empty and smaller than a block");
  }
  if (base < halo_bytes) {
    throw std::invalid_argument("halo stencil: base below first halo");
  }
}

std::shared_ptr<const std::vector<trace::TaskRecord>> make_halo_stencil_trace(
    const HaloStencilConfig& cfg) {
  cfg.validate();
  auto tasks = std::make_shared<std::vector<trace::TaskRecord>>();
  tasks->reserve(halo_stencil_task_count(cfg));

  const core::Addr b = cfg.block_bytes;
  std::uint64_t serial = 0;
  for (std::uint32_t t = 0; t < cfg.steps; ++t) {
    for (std::uint32_t i = 0; i < cfg.blocks; ++i, ++serial) {
      trace::TaskRecord rec;
      rec.serial = serial;
      rec.fn = 0x57E7C11;
      draw_timing(cfg.timing, cfg.seed, rec);

      if (i > 0) {
        // Tail of block i-1: a base address no parameter ever writes.
        rec.params.push_back(
            core::in(cfg.base + i * b - cfg.halo_bytes, cfg.halo_bytes));
      }
      if (i + 1 < cfg.blocks) {
        // Head of block i+1: shares that block's base address.
        rec.params.push_back(
            core::in(cfg.base + (i + 1) * b, cfg.halo_bytes));
      }
      rec.params.push_back(core::inout(cfg.base + i * b, cfg.block_bytes));
      tasks->push_back(std::move(rec));
    }
  }
  return tasks;
}

std::unique_ptr<trace::TaskStream> make_halo_stencil_stream(
    const HaloStencilConfig& cfg) {
  return std::make_unique<trace::VectorStream>(make_halo_stencil_trace(cfg));
}

void MixedTilesConfig::validate() const {
  if (tiles == 0 || rounds == 0) {
    throw std::invalid_argument("mixed tiles: empty workload");
  }
  if (sub_blocks == 0 || tile_bytes == 0 ||
      tile_bytes % sub_blocks != 0) {
    throw std::invalid_argument(
        "mixed tiles: sub_blocks must evenly divide tile_bytes");
  }
}

std::shared_ptr<const std::vector<trace::TaskRecord>> make_mixed_tiles_trace(
    const MixedTilesConfig& cfg) {
  cfg.validate();
  auto tasks = std::make_shared<std::vector<trace::TaskRecord>>();
  tasks->reserve(mixed_tiles_task_count(cfg));

  const std::uint32_t sub_bytes = cfg.tile_bytes / cfg.sub_blocks;
  std::uint64_t serial = 0;
  for (std::uint32_t r = 0; r < cfg.rounds; ++r) {
    for (std::uint32_t t = 0; t < cfg.tiles; ++t) {
      const core::Addr tile = cfg.base + static_cast<core::Addr>(t) *
                                             cfg.tile_bytes;
      trace::TaskRecord producer;
      producer.serial = serial++;
      producer.fn = 0x711E;
      draw_timing(cfg.timing, cfg.seed, producer);
      producer.params.push_back(core::inout(tile, cfg.tile_bytes));
      tasks->push_back(std::move(producer));

      for (std::uint32_t k = 0; k < cfg.sub_blocks; ++k) {
        trace::TaskRecord consumer;
        consumer.serial = serial++;
        consumer.fn = 0x5B;
        draw_timing(cfg.timing, cfg.seed, consumer);
        consumer.params.push_back(
            core::in(tile + static_cast<core::Addr>(k) * sub_bytes,
                     sub_bytes));
        tasks->push_back(std::move(consumer));
      }
    }
  }
  return tasks;
}

std::unique_ptr<trace::TaskStream> make_mixed_tiles_stream(
    const MixedTilesConfig& cfg) {
  return std::make_unique<trace::VectorStream>(make_mixed_tiles_trace(cfg));
}

}  // namespace nexuspp::workloads
