#pragma once
// starss::Runtime — a real, threaded StarSs-style task runtime.
//
// This is the reconstructed software substrate of the paper's programming
// model: the programmer submits tasks (any callable) together with their
// input/output/inout memory accesses, and the runtime derives dependencies
// from overlapping base addresses exactly like the `#pragma css task
// input(...) inout(...)` annotations do:
//
//     starss::Runtime rt(4);
//     rt.submit([&] { c = a + b; },
//               {starss::in(&a), starss::in(&b), starss::out(&c)});
//     rt.wait_all();
//
// Semantics match core::Resolver / core::GraphOracle: readers of the same
// address run concurrently (RAR), RAW / WAR / WAW order execution. The
// dependency tracker uses the classic last-writer + readers-since-write
// registration: a reader depends on the last unfinished writer; a writer
// depends on the last writer and on every unfinished reader since.
//
// This runtime is both a usable library (the examples compute real results
// with it) and the reference point the simulated systems are compared
// against conceptually; its per-task overheads motivate the
// rts::SoftwareRtsConfig defaults.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"

namespace nexuspp::starss {

/// One declared memory access of a task.
struct Access {
  const void* ptr = nullptr;
  std::size_t bytes = 0;
  core::AccessMode mode = core::AccessMode::kIn;
};

template <typename T>
[[nodiscard]] Access in(const T* p, std::size_t count = 1) {
  return Access{p, sizeof(T) * count, core::AccessMode::kIn};
}
template <typename T>
[[nodiscard]] Access out(T* p, std::size_t count = 1) {
  return Access{p, sizeof(T) * count, core::AccessMode::kOut};
}
template <typename T>
[[nodiscard]] Access inout(T* p, std::size_t count = 1) {
  return Access{p, sizeof(T) * count, core::AccessMode::kInOut};
}

class Runtime {
 public:
  using TaskFn = std::function<void()>;

  /// Starts `num_threads` workers (defaults to hardware concurrency).
  explicit Runtime(unsigned num_threads = 0);

  /// Waits for all tasks, then joins the workers.
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Submits a task. Dependencies against earlier unfinished tasks are
  /// derived from the access list (base-address comparison, like the
  /// paper's hardware). Safe to call from task bodies (nested submission).
  void submit(TaskFn fn, std::vector<Access> accesses);

  /// Blocks until every submitted task has finished (the `css barrier`
  /// pragma). Rethrows the first exception a task threw, if any.
  void wait_all();

  /// Blocks until every task that had declared an access on `ptr` at the
  /// time of this call has finished (the `css wait on(...)` pragma).
  /// Tasks submitted afterwards are not waited for.
  void wait_on(const void* ptr);

  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t executed = 0;
    std::uint64_t dependency_edges = 0;
    std::uint64_t raw_hazards = 0;
    std::uint64_t war_hazards = 0;
    std::uint64_t waw_hazards = 0;
    unsigned max_concurrency = 0;  ///< peak simultaneously-running tasks
  };
  /// Snapshot of runtime statistics (thread-safe).
  [[nodiscard]] Stats stats() const;

 private:
  struct Task {
    TaskFn fn;
    std::vector<Access> accesses;
    std::uint32_t pending = 0;  ///< unfinished predecessors
    bool finished = false;
    std::vector<std::shared_ptr<Task>> successors;
  };
  using TaskPtr = std::shared_ptr<Task>;

  struct AddrState {
    TaskPtr last_writer;           ///< most recent writer (may be finished)
    std::vector<TaskPtr> readers;  ///< readers since the last writer
  };

  void worker_loop();
  void enqueue_ready(TaskPtr task);
  void run_task(const TaskPtr& task);
  /// Registers a dependency edge pred -> succ if pred is unfinished.
  void add_edge_locked(const TaskPtr& pred, const TaskPtr& succ);

  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;  ///< workers wait for ready tasks
  std::condition_variable idle_cv_;   ///< wait_all waits for completion
  std::deque<TaskPtr> ready_;
  std::unordered_map<const void*, AddrState> addresses_;
  std::vector<std::thread> workers_;
  bool shutdown_ = false;
  std::uint64_t submitted_ = 0;
  std::uint64_t executed_ = 0;
  unsigned running_now_ = 0;
  std::exception_ptr first_exception_;
  Stats stats_;
};

}  // namespace nexuspp::starss
