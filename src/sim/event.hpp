#pragma once
// Condition-style event: processes co_await event.wait(); notify_all /
// notify_one schedule the waiters at the current time. Waiters must re-check
// their condition in a loop (condition-variable discipline) because another
// process may run first at the same timestamp.

#include <coroutine>
#include <cstddef>
#include <deque>

#include "sim/simulator.hpp"

namespace nexuspp::sim {

class Event {
 public:
  explicit Event(Simulator& sim) noexcept : sim_(&sim) {}
  // Pinned: suspended waiters reference this object (see sim::Fifo).
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;
  Event(Event&&) = delete;
  Event& operator=(Event&&) = delete;

  [[nodiscard]] auto wait() {
    struct Awaiter {
      Event* event;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        event->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  /// Wakes every waiter (scheduled in wait order at the current time).
  void notify_all() {
    while (!waiters_.empty()) {
      sim_->schedule_now(waiters_.front());
      waiters_.pop_front();
    }
  }

  /// Wakes the earliest waiter, if any.
  void notify_one() {
    if (waiters_.empty()) return;
    sim_->schedule_now(waiters_.front());
    waiters_.pop_front();
  }

  [[nodiscard]] std::size_t waiter_count() const noexcept {
    return waiters_.size();
  }

 private:
  Simulator* sim_;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace nexuspp::sim
