#pragma once
// Multi-threaded design-space sweep driver.
//
// A SweepSpec is a declarative description of a measurement campaign:
// named workloads (stream factories), plus points = engine name x workload
// name x EngineParams, optionally grouped into speedup series with a
// designated baseline. The SweepDriver expands nothing lazily and hides
// nothing: every point becomes exactly one single-threaded simulation, and
// because points are independent the driver runs them concurrently on a
// std::thread pool — a 13-point Fig. 6 grid on 4 threads finishes in
// roughly a quarter of the serial wall-clock.
//
// Results come back in spec order (fully deterministic regardless of
// thread interleaving) with speedup-vs-baseline columns computed per
// series, and can be emitted as an aligned table, sorted CSV, or JSON.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "engine/registry.hpp"
#include "engine/run_report.hpp"
#include "trace/trace.hpp"
#include "util/table.hpp"

namespace nexuspp::engine {

/// Builds a fresh stream per run. Must be safe to invoke concurrently from
/// several sweep threads (all shipped factories are: they copy a config or
/// share an immutable trace vector).
using StreamFactory = std::function<std::unique_ptr<trace::TaskStream>()>;

struct WorkloadSpec {
  std::string name;
  StreamFactory factory;
};

/// One point of the design space.
struct PointSpec {
  std::string engine;    ///< EngineRegistry name
  std::string workload;  ///< SweepSpec workload name
  EngineParams params;
  std::string series;    ///< speedup group; empty = "<engine>/<workload>"
  bool baseline = false; ///< reference run of its series
  std::string label;     ///< display label; empty = params.label()

  [[nodiscard]] std::string resolved_series() const {
    return series.empty() ? engine + "/" + workload : series;
  }
  [[nodiscard]] std::string resolved_label() const {
    return label.empty() ? params.label() : label;
  }
};

class SweepSpec {
 public:
  /// Registers a named workload. Returns *this for chaining.
  SweepSpec& workload(std::string name, StreamFactory factory);

  /// Registers a workload backed by a trace file (.nxt/.nxb, any format
  /// version): the file is loaded once, here, and every run shares the
  /// immutable record vector — sweeps replay the captured stream instead
  /// of a generator spec. Throws trace::TraceIoError on unreadable files.
  SweepSpec& workload_from_trace(std::string name, const std::string& path);

  /// Adds one explicit point.
  SweepSpec& point(PointSpec p);

  /// Cross-product helper: every engine x every registered-here workload
  /// name x every params entry. Within each (engine, workload) pair the
  /// first params entry is marked as the series baseline.
  SweepSpec& grid(const std::vector<std::string>& engines,
                  const std::vector<std::string>& workload_names,
                  const std::vector<EngineParams>& params);

  [[nodiscard]] const std::vector<WorkloadSpec>& workloads() const noexcept {
    return workloads_;
  }
  [[nodiscard]] const std::vector<PointSpec>& points() const noexcept {
    return points_;
  }

  /// Factory for `workload`; throws std::out_of_range if unknown.
  [[nodiscard]] const StreamFactory& factory_for(
      const std::string& workload) const;

 private:
  std::vector<WorkloadSpec> workloads_;
  std::vector<PointSpec> points_;
};

struct SweepResult {
  PointSpec spec;
  RunReport report;
  double speedup = 0.0;       ///< vs series baseline; 0 when undefined
  double wall_seconds = 0.0;  ///< host time spent simulating this point
  /// Non-empty when running this point threw (an infrastructure failure —
  /// bad spec, allocation, I/O), as opposed to a *diagnosed deadlock*,
  /// which a report carries in `report.deadlocked`/`report.diagnosis`.
  /// Surfaces in the CSV/JSON `error` column; never sets `deadlocked`.
  std::string error;

  [[nodiscard]] bool failed() const noexcept {
    return report.deadlocked || !error.empty();
  }
};

struct SweepOptions {
  /// Worker threads. 0 = auto: max(4, std::thread::hardware_concurrency()).
  unsigned threads = 0;
};

struct MetgSpec;
struct MetgResult;

class SweepDriver {
 public:
  explicit SweepDriver(const EngineRegistry& registry =
                           EngineRegistry::builtins(),
                       SweepOptions options = {});

  /// Runs every point of `spec`; returns results in spec order. A point
  /// whose simulation throws carries the exception text in
  /// `SweepResult::error` (its report stays default — exceptions are
  /// infrastructure failures, not deadlock diagnoses) — one broken
  /// configuration never aborts a grid.
  [[nodiscard]] std::vector<SweepResult> run(const SweepSpec& spec);

  /// Runs one METG ladder (see MetgSpec below): descend the granularity
  /// axis from start_task_ns, halving per rung, until efficiency falls
  /// below the floor (or the ladder/min is exhausted). Rungs run
  /// sequentially — each one's efficiency decides whether to descend.
  [[nodiscard]] MetgResult run_metg(const MetgSpec& spec);

  /// Telemetry of the last run().
  [[nodiscard]] double last_wall_seconds() const noexcept {
    return last_wall_seconds_;
  }
  [[nodiscard]] unsigned last_threads_used() const noexcept {
    return last_threads_used_;
  }
  /// High-water mark of points simulating at the same instant.
  [[nodiscard]] unsigned last_peak_concurrency() const noexcept {
    return last_peak_concurrency_;
  }

  // --- Emission ---------------------------------------------------------------

  /// Extra per-result column for to_table().
  struct Column {
    std::string header;
    std::function<std::string(const SweepResult&)> cell;
  };

  /// Standard results table: series, label, engine, makespan, speedup,
  /// utilization, status — plus any caller-provided columns. (The
  /// workload is part of the default series name; pass an extra column
  /// when a custom-series table needs it spelled out.)
  [[nodiscard]] static util::Table to_table(
      const std::string& title, const std::vector<SweepResult>& results,
      const std::vector<Column>& extra = {});

  /// CSV rows sorted by (series, spec order): point identity + speedup +
  /// the full unified RunReport column set.
  static void write_csv(const std::vector<SweepResult>& results,
                        std::ostream& os);

  /// Same content as the CSV, as a JSON array of objects (numeric fields
  /// unquoted) — plus the structured extras that do not flatten into CSV
  /// cells: the per-worker utilization vector and its min/max.
  static void write_json(const std::vector<SweepResult>& results,
                         std::ostream& os);

  /// Writes the Chrome-trace timeline of every result that recorded one
  /// (EngineParams::timeline.enabled) to `path`. A single timeline lands at
  /// `path` exactly; with several, each point i writes `stem.p<i>.ext`. The
  /// point's metrics snapshot rides along under the "metrics" key. Returns
  /// the paths written, in results order.
  static std::vector<std::string> export_timelines(
      const std::vector<SweepResult>& results, const std::string& path);

 private:
  const EngineRegistry* registry_;
  SweepOptions options_;
  double last_wall_seconds_ = 0.0;
  unsigned last_threads_used_ = 0;
  unsigned last_peak_concurrency_ = 0;
};

// --- METG (minimum effective task granularity) --------------------------------
//
// task-bench's headline metric: shrink the per-task duration until the
// system can no longer keep efficiency above a floor (canonically 50%);
// the smallest still-efficient granularity is the METG. Engines with
// cheap dependence resolution sustain tiny tasks (low METG); heavyweight
// ones need coarse tasks to amortize their overhead (high METG).

/// One granularity sample of a METG ladder.
struct MetgSample {
  std::uint64_t task_ns = 0;  ///< requested per-task duration
  double efficiency = 0.0;    ///< total_exec / (makespan * workers)
};

/// Efficiency of one run: useful kernel time over the machine time the
/// run occupied — total_exec / (makespan * workers). Works identically
/// for simulated makespans and the real executor's wall clock.
[[nodiscard]] double run_efficiency(const RunReport& report) noexcept;

/// The 50%-crossing computation, as a pure function so tests can pin it
/// on synthetic curves. Samples are sorted by descending task_ns
/// (duplicates collapse to the first occurrence); the METG is the
/// granularity at which the efficiency curve crosses `efficiency_floor`,
/// log-interpolated between the last sample at/above the floor and the
/// first below it (exactly the boundary sample's task_ns when it sits on
/// the floor). Returns 0 when the curve never reaches the floor (no
/// granularity is effective), and the smallest sampled task_ns when it
/// never drops below (the ladder did not descend far enough).
[[nodiscard]] double metg_from_samples(std::vector<MetgSample> samples,
                                       double efficiency_floor = 0.5);

/// One engine x workload METG measurement campaign.
struct MetgSpec {
  std::string engine;    ///< EngineRegistry name
  std::string workload;  ///< display name for reports/CSV
  /// Builds the workload at a given per-task granularity (the ladder axis).
  std::function<StreamFactory(std::uint64_t task_ns)> workload_at;
  EngineParams params;
  std::uint64_t start_task_ns = 262'144;  ///< ladder top (halves each rung)
  std::uint64_t min_task_ns = 64;         ///< ladder floor (inclusive)
  double efficiency_floor = 0.5;
  std::string series;  ///< speedup/CSV series; empty = engine/workload
};

struct MetgResult {
  /// The efficiency curve, in ladder order (descending task_ns).
  std::vector<MetgSample> samples;
  /// metg_from_samples over `samples` (0 when never effective).
  double metg_ns = 0.0;
  /// One SweepResult per rung, labeled "task_ns=<g>"; the crossing rung
  /// (last at/above the floor) carries metg_ns in its RunReport, so the
  /// standard CSV/JSON emission reports METG first-class.
  std::vector<SweepResult> runs;
  /// Non-empty when a rung failed (deadlock or exception); the ladder
  /// stops there and metg_ns reflects only the rungs that ran.
  std::string error;
};

/// Convenience: run `spec` on the built-in registry with default options.
[[nodiscard]] std::vector<SweepResult> run_sweep(const SweepSpec& spec,
                                                 SweepOptions options = {});

}  // namespace nexuspp::engine
