#include "exec/spin.hpp"

#include <chrono>

#include "chk/chk.hpp"

namespace nexuspp::exec {

namespace {

using Clock = std::chrono::steady_clock;

/// Dependent multiply-add chain the optimizer cannot collapse (the result
/// is published to a volatile sink by the caller).
std::uint64_t spin_batch(std::uint64_t iters, std::uint64_t seed) noexcept {
  std::uint64_t x = seed | 1u;
  for (std::uint64_t i = 0; i < iters; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
  }
  return x;
}

chk::Atomic<std::uint64_t> g_sink{0};

std::uint64_t measure_iters_per_us() {
  // Warm up (first-touch, frequency ramp), then time a growing batch until
  // the measurement window is comfortably above clock granularity.
  g_sink.fetch_add(spin_batch(10'000, 1), std::memory_order_relaxed);
  std::uint64_t iters = 100'000;
  for (int attempt = 0; attempt < 10; ++attempt) {
    const auto t0 = Clock::now();
    g_sink.fetch_add(spin_batch(iters, iters), std::memory_order_relaxed);
    const auto elapsed_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count());
    if (elapsed_ns >= 1'000'000) {  // >= 1 ms window: good enough
      return iters * 1'000 / elapsed_ns;
    }
    iters *= 4;
  }
  return 1'000;  // pessimistic fallback: 1 iteration per ns
}

}  // namespace

std::uint64_t spin_iters_per_us() {
  static const std::uint64_t value = measure_iters_per_us();
  return value;
}

void spin_for_ns(std::uint64_t ns) {
  if (ns == 0) return;
  const auto deadline = Clock::now() + std::chrono::nanoseconds(ns);
  // ~1/16 us between clock reads, at least a handful of iterations.
  const std::uint64_t batch = spin_iters_per_us() / 16 + 8;
  std::uint64_t local = 0;
  while (Clock::now() < deadline) {
    local += spin_batch(batch, local + ns);
  }
  g_sink.fetch_add(local, std::memory_order_relaxed);
}

}  // namespace nexuspp::exec
