#pragma once
// DelegationQueue: the per-shard flat-combining request channel of the
// lock-free resolver backend (exec/sharded_resolver, sync=lockfree).
//
// Threads that need a shard mutation publish a SyncRequest into a bounded
// Vyukov-style MPMC ring and then either *become the combiner* — grab the
// combiner flag and drain every published request in FIFO order — or
// spin-wait (with escalating backoff) on their own request's `done` flag.
// Under contention one cache-line handoff therefore moves a whole batch of
// requests through the shard, where a mutex would convoy the same threads
// one context switch at a time. This is the delegation/combining pattern
// of Álvarez et al. 2021 ("Advanced Synchronization Techniques for
// Task-based Runtime Systems"), which is itself the software analogue of
// the Nexus++ hardware's pipelined dependence-lookup FIFOs.
//
// The combiner flag serializes all handler execution: handlers may mutate
// plain (non-atomic) shard state. The release/acquire pair on the flag
// orders one combiner's writes before the next combiner's reads, and the
// per-request `done` release/acquire pair publishes handler-written result
// fields back to the requester.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>

#include "chk/chk.hpp"

namespace nexuspp::exec {

/// Architectural spin hint (PAUSE/YIELD); compiler barrier elsewhere.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Escalating wait: brief pause bursts, then scheduler yields, then short
/// sleeps. The yield/sleep stages are load-bearing on oversubscribed hosts
/// (CI containers, single-core boxes): a pure spin would burn the very
/// timeslice the combiner needs to finish the work being waited on.
class Backoff {
 public:
  void pause() {
    // Under a schedule controller, waiting is a scheduling decision, not
    // a wall-clock one: yield to the controller instead of spinning.
    if (chk::spin_yield()) return;
    if (round_ < kPauseRounds) {
      for (unsigned i = 0; i < (1u << round_); ++i) cpu_relax();
    } else if (round_ < kPauseRounds + kYieldRounds) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    ++round_;
  }

  void reset() noexcept { round_ = 0; }

 private:
  static constexpr unsigned kPauseRounds = 6;
  static constexpr unsigned kYieldRounds = 64;
  unsigned round_ = 0;
};

/// Base class for requests moved through a DelegationQueue. The combiner
/// stores `done` (release) after running the handler on a request; the
/// publisher's acquire load of `done` therefore also sees every result
/// field the handler wrote.
struct SyncRequest {
  chk::Atomic<bool> done{false};
};

class DelegationQueue {
 public:
  /// Capacity is rounded up to a power of two (minimum 2). The ring only
  /// holds *in-flight* requests — one per thread at most — so a small ring
  /// suffices; a full ring degrades to combining on the publish side, it
  /// never loses requests.
  explicit DelegationQueue(std::size_t capacity_hint = 256);

  DelegationQueue(const DelegationQueue&) = delete;
  DelegationQueue& operator=(const DelegationQueue&) = delete;

  /// Publishes a request (wait-free apart from CAS retries under producer
  /// contention, which are counted). False when the ring is full.
  [[nodiscard]] bool try_publish(SyncRequest* request);

  /// Attempts to become the combiner. On success the caller has exclusive
  /// handler-execution rights until release_combiner().
  [[nodiscard]] bool try_acquire_combiner() {
    return !combiner_.exchange(true, std::memory_order_acq_rel);
  }
  void release_combiner() { combiner_.store(false, std::memory_order_release); }

  /// Drains every published request in FIFO order, invoking
  /// `handler(SyncRequest&)` then setting the request's done flag. Caller
  /// must hold the combiner flag. Returns the batch size. Stops early at a
  /// slot another producer has claimed but not yet published (that request
  /// is picked up by the next drain).
  template <class Fn>
  std::size_t drain(Fn&& handler) {
    std::size_t drained = 0;
    for (;;) {
      const std::uint64_t pos = head_.load(std::memory_order_relaxed);
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      if (seq != pos + 1) break;  // empty, or next publisher mid-flight
      chk::plain_read(&cell.request);
      SyncRequest* request = cell.request;
      head_.store(pos + 1, std::memory_order_relaxed);
      cell.seq.store(pos + mask_ + 1, std::memory_order_release);
      handler(*request);
      request->done.store(true, std::memory_order_release);
      ++drained;
    }
    if (drained > 0) record_batch(drained);
    return drained;
  }

  /// The full delegation protocol for one request: publish (combining in
  /// place if the ring is full), then combine-or-wait until the request is
  /// done. On return every handler-written result field is visible.
  template <class Fn>
  void execute(SyncRequest& request, Fn&& handler) {
    request.done.store(false, std::memory_order_relaxed);
    Backoff backoff;
    while (!try_publish(&request)) {
      if (try_acquire_combiner()) {
        drain(handler);
        release_combiner();
      } else {
        backoff.pause();
      }
    }
    backoff.reset();
    while (!request.done.load(std::memory_order_acquire)) {
      if (try_acquire_combiner()) {
        drain(handler);
        release_combiner();
        // Almost always done now; a producer that claimed a slot ahead of
        // ours but has not yet published can still gate us — loop.
        continue;
      }
      backoff.pause();
    }
  }

  struct Stats {
    std::uint64_t cas_retries = 0;        ///< failed publish CASes
    std::uint64_t combined_batches = 0;   ///< nonempty drains
    std::uint64_t combined_requests = 0;  ///< requests across all batches
    std::uint64_t max_combined_batch = 0;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  struct alignas(64) Cell {
    chk::Atomic<std::uint64_t> seq{0};
    SyncRequest* request = nullptr;
  };

  void record_batch(std::size_t drained);

  std::unique_ptr<Cell[]> cells_;
  std::uint64_t mask_ = 0;
  alignas(64) chk::Atomic<std::uint64_t> tail_{0};  ///< next publish slot
  alignas(64) chk::Atomic<std::uint64_t> head_{0};  ///< next drain slot
  alignas(64) chk::Atomic<bool> combiner_{false};
  chk::Atomic<std::uint64_t> cas_retries_{0};
  chk::Atomic<std::uint64_t> combined_batches_{0};
  chk::Atomic<std::uint64_t> combined_requests_{0};
  chk::Atomic<std::uint64_t> max_combined_batch_{0};
};

}  // namespace nexuspp::exec
