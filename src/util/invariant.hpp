#pragma once
// Checked-build invariant layer (second defense layer — see
// docs/CORRECTNESS.md). Compiled to nothing unless NEXUSPP_CHECKED is
// defined (CMake option of the same name), so the hooks below can sit
// directly on hot paths at zero release-build cost.
//
// Three families of run-time invariants, each a discipline the lock-free
// backend (sharded_resolver.cpp) relies on but no compiler checks:
//
//   Lock rank — every mutex the execution layer takes carries a rank
//   (LockDomain). A thread-local tracker asserts that (a) shard mutexes
//   never nest (no thread holds two shard locks — the resolver's
//   one-critical-section-at-a-time design depends on it: cross-shard
//   atomicity is never needed *because* no operation spans two shards),
//   (b) no thread holds a shard mutex and the executor's run-queue
//   mutex at once (either order — the pair is what would make a
//   lock-cycle possible at all), and (c) the schedcheck runtime's
//   internal lock (kChk) is a leaf: instrumentation hooks fire *inside*
//   shard / run-queue critical sections, so kChk may be taken while
//   those are held, but never the reverse and never recursively.
//
//   No-alloc tripwire — NoAllocScope replaces the global operator new
//   family with an aborting hook for the enclosing dynamic extent.
//   ShardedResolver::finish wraps itself in one: the release hot path is
//   documented never to allocate, and every *audited* interior allocation
//   (core-resolver bookkeeping, combiner snapshots, epoch limbo nodes)
//   re-enables allocation through an AllowAllocScope naming its reason.
//   A new allocation sneaking onto the path trips the hook and aborts
//   with the offending scope's label.
//
//   Epoch guard — dereferencing a combiner-published snapshot or a
//   grant-overflow block is only safe under an active EpochDomain guard
//   (pin). Readers assert_epoch_guard() at the deref; Guard's ctor/dtor
//   report pin/unpin through epoch_guard_acquired/released.
//
// All violations funnel into invariant_fail(), which prints one
// "nexuspp-checked: <what> (<where>)" line on stderr and aborts — the
// checked_invariant_test death tests match on that prefix.

#include <cstddef>

namespace nexuspp::util {

/// Lock ranks for the execution layer. Values are informational (the
/// checked rules are "no two held" per the matrix above), but keep shard
/// lowest so a future ordered-rank rule can drop in without re-ranking.
enum class LockDomain : int {
  kShard = 0,     ///< a ShardedResolver shard mutex
  kRunQueue = 1,  ///< ThreadedExecutor's run-queue mutex
  kChk = 2,       ///< schedcheck runtime internals (src/chk session state)
};

#if defined(NEXUSPP_CHECKED)

/// Prints "nexuspp-checked: <what> (<where>)" to stderr and aborts.
[[noreturn]] void invariant_fail(const char* what, const char* where);

/// RAII record of one held lock; construct immediately after acquiring,
/// destroy when releasing (member order next to the std::unique_lock it
/// shadows takes care of both). Asserts the no-two-locks rules on entry.
class LockRankGuard {
 public:
  explicit LockRankGuard(LockDomain domain);
  ~LockRankGuard();
  LockRankGuard(const LockRankGuard&) = delete;
  LockRankGuard& operator=(const LockRankGuard&) = delete;
  LockRankGuard(LockRankGuard&& other) noexcept;
  LockRankGuard& operator=(LockRankGuard&&) = delete;

 private:
  LockDomain domain_;
  bool engaged_ = true;
};

/// While alive, any allocation through global operator new on this thread
/// aborts (unless an AllowAllocScope is also alive). Nestable.
class NoAllocScope {
 public:
  explicit NoAllocScope(const char* label);
  ~NoAllocScope();
  NoAllocScope(const NoAllocScope&) = delete;
  NoAllocScope& operator=(const NoAllocScope&) = delete;

 private:
  const char* prev_label_;
};

/// Audited hole in an enclosing NoAllocScope; `reason` documents why the
/// allocation is acceptable (it is printed nowhere on success — the point
/// is the reviewer reading the call site). Nestable.
class AllowAllocScope {
 public:
  explicit AllowAllocScope(const char* reason);
  ~AllowAllocScope();
  AllowAllocScope(const AllowAllocScope&) = delete;
  AllowAllocScope& operator=(const AllowAllocScope&) = delete;
};

/// EpochDomain::Guard reports pin/unpin through these.
void epoch_guard_acquired();
void epoch_guard_released();

/// Call at every deref of epoch-protected memory (combiner snapshot,
/// grant-overflow block): aborts unless this thread holds an epoch pin.
void assert_epoch_guard(const char* where);

#else  // !NEXUSPP_CHECKED — everything below must optimize to nothing.

class LockRankGuard {
 public:
  explicit LockRankGuard(LockDomain) noexcept {}
  LockRankGuard(LockRankGuard&&) noexcept = default;
};

class NoAllocScope {
 public:
  explicit NoAllocScope(const char*) noexcept {}
};

class AllowAllocScope {
 public:
  explicit AllowAllocScope(const char*) noexcept {}
};

inline void epoch_guard_acquired() noexcept {}
inline void epoch_guard_released() noexcept {}
inline void assert_epoch_guard(const char*) noexcept {}

#endif  // NEXUSPP_CHECKED

}  // namespace nexuspp::util
