#include "obs/trace_export.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

namespace nexuspp::obs {

namespace {

void write_escaped(std::ostream& out, const std::string& text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << ' ';
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// Doubles rounded to 6 decimals of a microsecond (picosecond resolution)
/// so integer simulator timestamps round-trip exactly — coarser rounding
/// makes back-to-back spans look partially overlapped to schema checkers.
/// Written as plain decimal, never exponent form.
void write_us(std::ostream& out, double ns) {
  const double us = ns / 1000.0;
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6f", us);
  out << buffer;
}

void write_event_prefix(std::ostream& out, bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << "    ";
}

void write_metadata(std::ostream& out, bool& first, const char* name,
                    std::uint32_t pid, std::uint32_t tid,
                    const std::string& value) {
  write_event_prefix(out, first);
  out << "{\"ph\":\"M\",\"ts\":0,\"pid\":" << pid << ",\"tid\":" << tid
      << ",\"name\":\"" << name << "\",\"args\":{\"name\":";
  write_escaped(out, value);
  out << "}}";
}

void write_metric(std::ostream& out, const Metric& metric) {
  out << "{\"name\":";
  write_escaped(out, metric.name);
  out << ",\"kind\":\"" << to_string(metric.kind) << "\"";
  if (metric.kind == MetricKind::kHistogram) {
    out << ",\"count\":" << metric.count << ",\"sum\":" << metric.sum
        << ",\"quantiles\":{";
    bool first = true;
    for (const auto& [q, v] : metric.quantiles) {
      if (!first) out << ",";
      first = false;
      out << "\"p" << static_cast<int>(q * 100.0 + 0.5) << "\":" << v;
    }
    out << "}";
  } else {
    out << ",\"value\":" << metric.value;
  }
  out << "}";
}

}  // namespace

void write_chrome_trace(const Timeline& timeline, std::ostream& out,
                        const TraceExportOptions& options) {
  const std::uint32_t pid = options.pid;
  out << "{\n  \"displayTimeUnit\": \"ns\",\n";
  out << "  \"otherData\": {\"clock\": \"" << timeline.clock << "\"},\n";
  if (options.metrics != nullptr) {
    out << "  \"metrics\": [";
    bool first = true;
    for (const Metric& metric : options.metrics->snapshot()) {
      if (!first) out << ", ";
      first = false;
      write_metric(out, metric);
    }
    out << "],\n";
  }
  out << "  \"traceEvents\": [\n";

  bool first = true;
  write_metadata(out, first, "process_name", pid, 0,
                 timeline.process + " [" + timeline.clock + " clock]");
  for (std::size_t t = 0; t < timeline.tracks.size(); ++t) {
    write_metadata(out, first, "thread_name", pid,
                   static_cast<std::uint32_t>(t + 1), timeline.tracks[t].name);
  }

  for (std::size_t t = 0; t < timeline.tracks.size(); ++t) {
    const std::uint32_t tid = static_cast<std::uint32_t>(t + 1);
    for (const TimelineEvent& event : timeline.tracks[t].events) {
      write_event_prefix(out, first);
      const char* name = to_string(event.kind);
      if (is_counter(event.kind)) {
        out << "{\"ph\":\"C\",\"ts\":";
        write_us(out, event.ts_ns);
        out << ",\"pid\":" << pid << ",\"tid\":" << tid << ",\"name\":\""
            << name << "\",\"cat\":\"counter\",\"args\":{\"value\":"
            << event.arg << "}}";
      } else if (is_span(event.kind)) {
        out << "{\"ph\":\"X\",\"ts\":";
        write_us(out, event.ts_ns);
        out << ",\"dur\":";
        write_us(out, event.dur_ns);
        out << ",\"pid\":" << pid << ",\"tid\":" << tid << ",\"name\":\""
            << name << "\",\"cat\":\"" << category(event.kind)
            << "\",\"args\":{\"task\":" << event.task;
        if (event.kind == EventKind::kLockWait) {
          out << ",\"shard\":" << event.arg;
        }
        out << "}}";
      } else {
        out << "{\"ph\":\"i\",\"ts\":";
        write_us(out, event.ts_ns);
        out << ",\"pid\":" << pid << ",\"tid\":" << tid << ",\"s\":\"t\""
            << ",\"name\":\"" << name << "\",\"cat\":\""
            << category(event.kind) << "\",\"args\":{\"task\":" << event.task;
        if (event.kind == EventKind::kReady) {
          if (event.arg == kNoPred) {
            out << ",\"pred\":\"none\"";
          } else {
            out << ",\"pred\":" << event.arg;
          }
        } else if (event.kind == EventKind::kCombine) {
          out << ",\"batch\":" << event.arg;
        }
        out << "}}";
      }
    }
  }

  out << "\n  ],\n";
  out << "  \"otherStats\": {\"events\": " << timeline.total_events()
      << ", \"dropped\": " << timeline.total_dropped() << "}\n";
  out << "}\n";
}

bool save_chrome_trace(const Timeline& timeline, const std::string& path,
                       const TraceExportOptions& options) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  write_chrome_trace(timeline, out, options);
  return out.good();
}

}  // namespace nexuspp::obs
